//! The epoch lifecycle subsystem (paper §II-C): drift clocks, the
//! restart/settling protocol, and the epoch-reset baseline built on them.
//!
//! Epoch-reset aggregation is "the simplest form of dynamic aggregation":
//! wrap a static protocol and periodically restart it, so errors from
//! departed hosts only survive until the next reset. No leader is needed —
//! messages carry an epoch counter and hosts adopt the highest epoch they
//! see ("weak clock synchronization by annotating each message with a
//! periodically incremented epoch counter").
//!
//! The paper's critique, which this module makes measurable:
//!
//! 1. the right epoch length depends on the network's convergence time,
//!    which depends on the network size — *itself an aggregate* — and
//! 2. "node mobility may result in disruptions in aggregate computation
//!    while the destination clique settles on a new epoch number".
//!
//! Three pieces model that critique:
//!
//! * [`DriftModel`] — how a host's local clock misbehaves: perfectly
//!   [`DriftModel::Synced`], a [`DriftModel::ConstantSkew`] rate, a
//!   [`DriftModel::Bernoulli`] missed-tick process (a slept radio), or
//!   [`DriftModel::RandomWalk`] jitter.
//! * [`EpochClock`] — a per-host logical clock: an epoch number plus a
//!   phase (ticks into the current epoch), advanced through a drift model,
//!   optionally starting at a configurable offset (cliques with
//!   independent histories sit at unrelated epoch numbers).
//! * [`EpochPushSum`] — Push-Sum restarted every epoch, with the paper's
//!   restart/settling protocol: a host receiving a *disruptively* higher
//!   epoch number discards its partial sums, rejoins at the new epoch, and
//!   spends a settling window during which its estimate is unusable
//!   ([`crate::protocol::Estimator::estimate`] returns `None` and
//!   [`crate::protocol::Estimator::is_settling`] reports `true`).
//!
//! A restart is *benign* — the normal weak-sync rollover — only when the
//! incoming epoch is exactly one ahead, the receiver is within its
//! settling-window length of its own rollover, and the sender freshly
//! rolled. Everything else (a migrant carrying a distant epoch number, a
//! mid-epoch jump) is a disruption: the interrupted epoch's partial sums
//! *and* the previously published value are discarded — the host
//! abandoned that epoch chain — leaving only the fresh epoch's
//! half-converged partials to serve once settling ends. `crates/bench`'s
//! `epoch-disruption` scenario sweeps exactly this against
//! [`crate::push_sum_revert::PushSumRevert`], which needs no
//! synchronization at all.
//!
//! ```
//! use dynagg_core::epoch::{DriftModel, EpochPushSum};
//! use dynagg_core::protocol::Estimator;
//!
//! // A host in a clique whose clock runs 12 ticks ahead of a peer's.
//! let ahead = EpochPushSum::new(10.0, 20).with_clock_offset(32);
//! assert_eq!(ahead.epoch(), 1);
//! let behind = EpochPushSum::new(50.0, 20).with_drift_model(DriftModel::Synced);
//! assert_eq!(behind.epoch(), 0);
//! // Fresh hosts publish their own value until the first epoch completes.
//! assert_eq!(behind.estimate(), Some(50.0));
//! assert!(!behind.is_settling());
//! ```

use crate::error::ProtocolError;
use crate::mass::{Mass, MASS_WIRE_BYTES};
use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};
use rand::rngs::SmallRng;
use rand::Rng;

/// How a host's logical clock drifts relative to the global round counter
/// (§II-C: "weak clock synchronization").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftModel {
    /// A perfect clock: exactly one tick per round.
    Synced,
    /// Constant skew: the clock advances `rate` ticks per round
    /// (deterministically, via a fractional carry). `rate < 1` models a
    /// slow crystal, `rate > 1` a fast one.
    ConstantSkew {
        /// Ticks per round; must be finite and non-negative.
        rate: f64,
    },
    /// Missed ticks: with probability `skip_prob` per round the clock does
    /// not advance (a slept radio, a missed beacon). The legacy drift
    /// model; reachable via [`EpochPushSum::with_drift`].
    Bernoulli {
        /// Per-round probability of missing a tick, in `[0, 1]`.
        skip_prob: f64,
    },
    /// Random-walk jitter: with probability `step_prob / 2` the clock
    /// skips a tick, with probability `step_prob / 2` it double-ticks.
    /// Unbiased in expectation, but host offsets diffuse over time.
    RandomWalk {
        /// Per-round probability of a jitter step, in `[0, 1]`.
        step_prob: f64,
    },
}

impl DriftModel {
    fn validate(self) -> Result<Self, ProtocolError> {
        let ok = match self {
            DriftModel::Synced => true,
            DriftModel::ConstantSkew { rate } => rate.is_finite() && rate >= 0.0,
            DriftModel::Bernoulli { skip_prob } => (0.0..=1.0).contains(&skip_prob),
            DriftModel::RandomWalk { step_prob } => (0.0..=1.0).contains(&step_prob),
        };
        if ok {
            Ok(self)
        } else {
            Err(ProtocolError::InvalidDrift)
        }
    }

    /// Ticks to advance this round. `carry` accumulates fractional skew
    /// between calls. Random models draw from `rng`; deterministic models
    /// consume no randomness (so adding drift never perturbs unrelated
    /// RNG streams).
    ///
    /// Public because clock consumers outside the epoch lifecycle reuse
    /// the same drift semantics — the async node runtime
    /// (`dynagg-node`) drives each device's round timer through this.
    pub fn ticks(self, carry: &mut f64, rng: &mut SmallRng) -> u64 {
        match self {
            DriftModel::Synced => 1,
            DriftModel::ConstantSkew { rate } => {
                *carry += rate;
                let whole = carry.floor();
                *carry -= whole;
                whole as u64
            }
            DriftModel::Bernoulli { skip_prob } => {
                u64::from(skip_prob == 0.0 || rng.gen::<f64>() >= skip_prob)
            }
            DriftModel::RandomWalk { step_prob } => {
                if step_prob == 0.0 {
                    return 1;
                }
                let x = rng.gen::<f64>();
                if x < step_prob / 2.0 {
                    0
                } else if x < step_prob {
                    2
                } else {
                    1
                }
            }
        }
    }
}

/// A per-host logical epoch clock: an epoch number plus a phase (ticks
/// into the current epoch), advanced through a [`DriftModel`].
///
/// ```
/// use dynagg_core::epoch::EpochClock;
///
/// let mut clock = EpochClock::new(10).with_offset(25); // 2 epochs + 5 ticks
/// assert_eq!((clock.epoch(), clock.phase()), (2, 5));
/// for _ in 0..5 {
///     clock.tick_synced();
/// }
/// assert!(clock.due());
/// clock.roll();
/// assert_eq!((clock.epoch(), clock.phase()), (3, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EpochClock {
    epoch_len: u64,
    drift: DriftModel,
    /// Fractional tick accumulator for [`DriftModel::ConstantSkew`].
    carry: f64,
    epoch: u64,
    phase: u64,
}

impl EpochClock {
    /// A synced clock at epoch 0, phase 0, rolling every `epoch_len` ticks.
    ///
    /// # Panics
    /// Panics if `epoch_len` is zero; use [`EpochClock::try_new`].
    pub fn new(epoch_len: u64) -> Self {
        Self::try_new(epoch_len).expect("invalid epoch length")
    }

    /// Fallible constructor.
    pub fn try_new(epoch_len: u64) -> Result<Self, ProtocolError> {
        if epoch_len == 0 {
            return Err(ProtocolError::InvalidEpochLength(epoch_len));
        }
        Ok(Self { epoch_len, drift: DriftModel::Synced, carry: 0.0, epoch: 0, phase: 0 })
    }

    /// Start the clock `ticks` logical ticks into its life: epoch
    /// `ticks / epoch_len`, phase `ticks % epoch_len`. Models cliques with
    /// independent histories sitting at unrelated epoch numbers.
    pub fn with_offset(mut self, ticks: u64) -> Self {
        self.epoch = ticks / self.epoch_len;
        self.phase = ticks % self.epoch_len;
        self
    }

    /// Replace the drift model.
    ///
    /// # Panics
    /// Panics if the model's parameters are out of range; use
    /// [`EpochClock::try_with_drift`].
    pub fn with_drift(mut self, drift: DriftModel) -> Self {
        self.drift = drift.validate().expect("invalid drift model");
        self
    }

    /// Fallible [`EpochClock::with_drift`].
    pub fn try_with_drift(mut self, drift: DriftModel) -> Result<Self, ProtocolError> {
        self.drift = drift.validate()?;
        Ok(self)
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ticks into the current epoch.
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// The configured epoch length in ticks.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// The configured drift model.
    pub fn drift(&self) -> DriftModel {
        self.drift
    }

    /// Has the current epoch run its full length?
    pub fn due(&self) -> bool {
        self.phase >= self.epoch_len
    }

    /// Is the clock in the second half of its epoch? (The window in which
    /// the current partial sums are trusted over the published value.)
    pub fn in_second_half(&self) -> bool {
        self.phase * 2 >= self.epoch_len
    }

    /// Is the clock within `window` ticks of its natural rollover? (The
    /// window in which an epoch+1 adoption counts as a benign rollover
    /// rather than a §II-C disruption.)
    pub fn near_rollover(&self, window: u64) -> bool {
        self.phase + window >= self.epoch_len
    }

    /// Advance by one round through the drift model.
    pub fn tick(&mut self, rng: &mut SmallRng) {
        self.phase += self.drift.ticks(&mut self.carry, rng);
    }

    /// Advance exactly one tick, ignoring drift (useful in tests and for
    /// runtimes with externally disciplined clocks).
    pub fn tick_synced(&mut self) {
        self.phase += 1;
    }

    /// Natural rollover: enter the next epoch at phase 0.
    pub fn roll(&mut self) {
        self.epoch += 1;
        self.phase = 0;
    }

    /// Forced restart: jump to `epoch`, phase 0. The phase reset is what
    /// desynchronizes a disrupted clique from the epoch's source — the
    /// next rollover happens a partial epoch later, sustaining §II-C's
    /// epoch-number variance.
    pub fn restart_at(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.phase = 0;
    }
}

/// An epoch-annotated Push-Sum message: the explicit epoch number and the
/// sender's phase within it, so receivers can classify a restart as benign
/// rollover vs. §II-C disruption. Wire format in [`crate::wire`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMsg {
    /// Sender's epoch counter.
    pub epoch: u64,
    /// Sender's ticks into that epoch (saturated to `u32::MAX` on wire).
    pub phase: u32,
    /// The mass share.
    pub mass: Mass,
}

/// Serialized [`EpochMsg`] size: epoch (8) + phase (4) + mass (16).
pub const EPOCH_MSG_WIRE_BYTES: usize = 8 + 4 + MASS_WIRE_BYTES;

/// Push-Sum restarted every epoch via weak epoch counters, with the
/// restart/settling lifecycle of §II-C.
///
/// Lifecycle of one host:
///
/// * **Natural rollover** (its own clock reaches `epoch_len`): publish the
///   finished epoch's estimate, reset mass, enter the next epoch.
/// * **Benign adoption** (message from epoch+1, receiver late in its
///   epoch, sender early in the new one): same as a rollover — weak sync
///   working as intended.
/// * **Disruption** (any other higher-epoch message — a migrant from a
///   clique whose clock history differs): discard the partial sums
///   *without publishing*, jump to the new epoch, and spend
///   [`EpochPushSum::settle_len`] rounds settling, during which
///   [`Estimator::estimate`] is `None` and the local clock does not tick.
///
/// While settling or early in an epoch the host serves the last published
/// value; only past the epoch midpoint does it trust the fresh partial
/// sums. [`Estimator::disruptions`] counts lifetime disruptions so the
/// simulator can report disruption/settling time series.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPushSum {
    value: f64,
    clock: EpochClock,
    /// Rounds of unusable estimates after a disruption.
    settle_len: u64,
    /// Settling rounds remaining (0 = steady).
    settling: u64,
    /// Lifetime disruptive restarts.
    disruptions: u64,
    mass: Mass,
    inbox: Mass,
    /// The final estimate of the last *completed* epoch — what the host
    /// reports while the current epoch is still converging.
    published: Option<f64>,
}

impl EpochPushSum {
    /// An averaging host holding `value` that restarts every `epoch_len`
    /// rounds, with a synced clock and a settling window of
    /// `max(1, epoch_len / 4)`.
    ///
    /// # Panics
    /// Panics if `epoch_len` is zero; use [`EpochPushSum::try_new`].
    pub fn new(value: f64, epoch_len: u64) -> Self {
        Self::try_new(value, epoch_len).expect("invalid epoch length")
    }

    /// Fallible constructor.
    pub fn try_new(value: f64, epoch_len: u64) -> Result<Self, ProtocolError> {
        let clock = EpochClock::try_new(epoch_len)?;
        Ok(Self {
            value,
            clock,
            settle_len: (epoch_len / 4).max(1),
            settling: 0,
            disruptions: 0,
            mass: Mass::averaging(value),
            inbox: Mass::ZERO,
            published: Some(value),
        })
    }

    /// Legacy drift knob: with probability `drift_prob` per round, this
    /// host's local epoch clock does not tick
    /// ([`DriftModel::Bernoulli`]).
    ///
    /// # Panics
    /// Panics if `drift_prob` is outside `[0, 1]`.
    pub fn with_drift(self, drift_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drift_prob), "drift probability must be in [0, 1]");
        self.with_drift_model(DriftModel::Bernoulli { skip_prob: drift_prob })
    }

    /// Replace the clock's drift model.
    ///
    /// # Panics
    /// Panics if the model's parameters are out of range.
    pub fn with_drift_model(mut self, drift: DriftModel) -> Self {
        self.clock = self.clock.with_drift(drift);
        self
    }

    /// Start the host's clock `ticks` logical ticks into its life (see
    /// [`EpochClock::with_offset`]). Hosts in cliques with independent
    /// histories carry unrelated epoch numbers — the §II-C scenario.
    pub fn with_clock_offset(mut self, ticks: u64) -> Self {
        self.clock = self.clock.with_offset(ticks);
        self
    }

    /// Override the settling window length (rounds of unusable estimates
    /// after a disruption).
    pub fn with_settle_len(mut self, settle_len: u64) -> Self {
        self.settle_len = settle_len;
        self
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.clock.epoch()
    }

    /// The configured epoch length in rounds.
    pub fn epoch_len(&self) -> u64 {
        self.clock.epoch_len()
    }

    /// The host's logical clock.
    pub fn clock(&self) -> &EpochClock {
        &self.clock
    }

    /// The configured settling-window length.
    pub fn settle_len(&self) -> u64 {
        self.settle_len
    }

    /// Record the current estimate as the last completed epoch's value.
    fn publish(&mut self) {
        if let Some(e) = self.mass.estimate() {
            self.published = Some(e);
        }
    }

    /// Reset the partial sums to this host's own contribution.
    fn reset_mass(&mut self) {
        self.mass = Mass::averaging(self.value);
        self.inbox = Mass::ZERO;
    }

    /// Is `msg` (already known to carry a higher epoch) a benign rollover
    /// rather than a §II-C disruption? Benign means: the next epoch, the
    /// receiver within `settle_len` ticks of its own rollover, and the
    /// sender freshly rolled — weak clock sync working as intended.
    /// Anything wider is a foreign clock history arriving mid-epoch.
    fn is_benign_rollover(&self, msg: &EpochMsg) -> bool {
        msg.epoch == self.clock.epoch() + 1
            && self.clock.near_rollover(self.settle_len)
            && u64::from(msg.phase) <= self.settle_len
    }
}

impl Estimator for EpochPushSum {
    fn estimate(&self) -> Option<f64> {
        if self.settling > 0 {
            // §II-C: the estimate is unusable while the host settles on a
            // new epoch number.
            return None;
        }
        if self.clock.in_second_half() {
            self.mass.estimate().or(self.published)
        } else {
            self.published.or_else(|| self.mass.estimate())
        }
    }

    fn is_settling(&self) -> bool {
        self.settling > 0
    }

    fn disruptions(&self) -> u64 {
        self.disruptions
    }

    fn audit_mass(&self) -> Option<Mass> {
        Some(self.mass)
    }
}

impl PushProtocol for EpochPushSum {
    type Message = EpochMsg;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, EpochMsg)>) {
        // Natural rollover on the local clock: publish the completed
        // epoch's estimate and start fresh.
        if self.settling == 0 && self.clock.due() {
            self.publish();
            self.clock.roll();
            self.reset_mass();
        }
        let half = self.mass.half();
        self.inbox = half;
        let msg = EpochMsg {
            epoch: self.clock.epoch(),
            phase: u32::try_from(self.clock.phase()).unwrap_or(u32::MAX),
            mass: half,
        };
        if let Some(peer) = ctx.sample_peer() {
            out.push((peer, msg));
        } else {
            self.inbox += half;
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: &EpochMsg,
        _ctx: &mut RoundCtx<'_>,
    ) -> Option<EpochMsg> {
        use std::cmp::Ordering;
        match msg.epoch.cmp(&self.clock.epoch()) {
            Ordering::Greater => {
                if self.is_benign_rollover(msg) {
                    // The normal weak-sync path: a peer rolled first and
                    // this host follows, keeping its finished estimate.
                    self.publish();
                } else {
                    // A disruption: a migrant (or a bridge message) from a
                    // clique whose clock history differs. The interrupted
                    // epoch's partial sums are garbage — discard without
                    // publishing — and the previously published value
                    // belongs to an epoch numbering this host just
                    // abandoned, so it is dropped too. The host settles.
                    self.disruptions += 1;
                    self.settling = self.settle_len;
                    self.published = None;
                }
                self.clock.restart_at(msg.epoch);
                self.reset_mass();
                // Rejoin this round's exchange with fresh mass: retain one
                // half locally (as if the other half had been pushed) and
                // absorb the incoming share.
                self.inbox = self.mass.half();
                self.mass = self.inbox;
                self.inbox += msg.mass;
            }
            Ordering::Equal => self.inbox += msg.mass,
            Ordering::Less => { /* stale epoch: drop the mass */ }
        }
        None
    }

    fn end_round(&mut self, ctx: &mut RoundCtx<'_>) {
        self.mass = self.inbox;
        self.inbox = Mass::ZERO;
        if self.settling > 0 {
            // The clock does not tick while the host settles.
            self.settling -= 1;
        } else {
            self.clock.tick(ctx.rng);
        }
    }

    fn message_bytes(_msg: &EpochMsg) -> usize {
        EPOCH_MSG_WIRE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::SliceSampler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn drive(nodes: &mut [EpochPushSum], rounds: std::ops::Range<u64>, rng: &mut SmallRng) {
        let mut out = Vec::new();
        for round in rounds {
            let ids: Vec<NodeId> = (0..nodes.len() as NodeId).collect();
            let mut queue: Vec<(usize, EpochMsg)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p as usize != i).collect();
                let mut sampler = SliceSampler::new(&peers);
                let mut ctx = RoundCtx { round, rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((to as usize, m));
                }
            }
            for (to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng, peers: &mut sampler };
                nodes[to].on_message(0, &m, &mut ctx);
            }
            for node in nodes.iter_mut() {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng, peers: &mut sampler };
                node.end_round(&mut ctx);
            }
        }
    }

    fn run(values: &[f64], epoch_len: u64, rounds: u64, seed: u64) -> Vec<EpochPushSum> {
        let mut nodes: Vec<EpochPushSum> =
            values.iter().map(|&v| EpochPushSum::new(v, epoch_len)).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        drive(&mut nodes, 0..rounds, &mut rng);
        nodes
    }

    #[test]
    fn converges_within_an_epoch() {
        let values: Vec<f64> = (0..8).map(|i| f64::from(i) * 10.0).collect();
        let nodes = run(&values, 25, 24, 31);
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!((e - 35.0).abs() < 5.0, "estimate {e}");
        }
    }

    #[test]
    fn epochs_advance_in_lockstep() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let nodes = run(&values, 10, 35, 32);
        for n in &nodes {
            assert_eq!(n.epoch(), 3, "after 35 rounds with epoch_len 10");
            assert_eq!(n.disruptions(), 0, "synced clocks never disrupt");
        }
    }

    #[test]
    fn recovers_after_failures_once_epoch_turns() {
        let values = [10.0, 20.0, 80.0, 90.0];
        let epoch_len = 15u64;
        let mut nodes: Vec<EpochPushSum> =
            values.iter().map(|&v| EpochPushSum::new(v, epoch_len)).collect();
        let mut rng = SmallRng::seed_from_u64(33);
        drive(&mut nodes, 0..14, &mut rng);
        nodes.truncate(2); // survivors: 10, 20 -> avg 15
                           // Run long enough for a full fresh epoch after the failure.
        drive(&mut nodes, 14..50, &mut rng);
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!((e - 15.0).abs() < 3.0, "post-epoch estimate {e} should be ~15");
        }
    }

    #[test]
    fn zero_epoch_rejected() {
        assert!(EpochPushSum::try_new(1.0, 0).is_err());
        assert!(EpochClock::try_new(0).is_err());
    }

    #[test]
    fn invalid_drift_rejected() {
        assert!(EpochClock::new(10)
            .try_with_drift(DriftModel::Bernoulli { skip_prob: 1.5 })
            .is_err());
        assert!(EpochClock::new(10)
            .try_with_drift(DriftModel::ConstantSkew { rate: f64::NAN })
            .is_err());
        assert!(EpochClock::new(10)
            .try_with_drift(DriftModel::RandomWalk { step_prob: -0.1 })
            .is_err());
    }

    #[test]
    fn constant_skew_halves_clock_rate() {
        let mut clock = EpochClock::new(10).with_drift(DriftModel::ConstantSkew { rate: 0.5 });
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..40 {
            clock.tick(&mut rng);
            if clock.due() {
                clock.roll();
            }
        }
        // 40 rounds × 0.5 ticks = 20 ticks = 2 epochs of 10.
        assert_eq!(clock.epoch(), 2);
        assert_eq!(clock.phase(), 0);
    }

    #[test]
    fn random_walk_is_unbiased_but_diffuses() {
        let mut rng = SmallRng::seed_from_u64(7);
        let total: u64 = (0..64)
            .map(|_| {
                let mut clock = EpochClock::new(1_000_000)
                    .with_drift(DriftModel::RandomWalk { step_prob: 0.5 });
                for _ in 0..500 {
                    clock.tick(&mut rng);
                }
                clock.phase()
            })
            .sum();
        let mean = total as f64 / 64.0;
        assert!((mean - 500.0).abs() < 20.0, "mean phase {mean} should stay near 500");
    }

    #[test]
    fn clock_offset_places_epoch_and_phase() {
        let n = EpochPushSum::new(1.0, 20).with_clock_offset(52);
        assert_eq!(n.epoch(), 2);
        assert_eq!(n.clock().phase(), 12);
    }

    #[test]
    fn disruption_triggers_settling_and_counts() {
        let mut node = EpochPushSum::new(10.0, 20).with_settle_len(3);
        let mut rng = SmallRng::seed_from_u64(40);
        // A migrant message from a distant epoch, mid-epoch: disruptive.
        let msg = EpochMsg { epoch: 5, phase: 13, mass: Mass::averaging(90.0).half() };
        let mut sampler = SliceSampler::new(&[]);
        let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
        node.on_message(1, &msg, &mut ctx);
        assert_eq!(node.epoch(), 5);
        assert_eq!(node.disruptions(), 1);
        assert!(node.is_settling());
        assert_eq!(node.estimate(), None, "settling estimates are unusable");
        // The settling window expires after settle_len end_rounds, during
        // which the clock does not tick.
        for _ in 0..3 {
            assert!(node.is_settling());
            let mut sampler = SliceSampler::new(&[]);
            let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
            node.end_round(&mut ctx);
        }
        assert!(!node.is_settling());
        assert_eq!(node.clock().phase(), 0, "clock paused while settling");
        // The disruption dropped the published value along with the
        // partial sums: the host now serves whatever its fresh epoch has.
        node.mass = Mass::averaging(10.0);
        assert_eq!(node.published, None, "disruption abandons the old epoch chain");
        assert_eq!(node.estimate(), Some(10.0), "fresh partial sums are all that remain");
    }

    #[test]
    fn benign_rollover_publishes_without_disruption() {
        let mut node = EpochPushSum::new(10.0, 20);
        let mut rng = SmallRng::seed_from_u64(41);
        // Advance deep into epoch 0 (second half), with converged mass.
        for _ in 0..15 {
            let mut sampler = SliceSampler::new(&[]);
            let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
            node.end_round(&mut ctx);
        }
        node.mass = Mass::new(1.0, 42.0); // pretend the epoch converged to 42
        let msg = EpochMsg { epoch: 1, phase: 1, mass: Mass::averaging(42.0).half() };
        let mut sampler = SliceSampler::new(&[]);
        let mut ctx = RoundCtx { round: 15, rng: &mut rng, peers: &mut sampler };
        node.on_message(1, &msg, &mut ctx);
        assert_eq!(node.epoch(), 1);
        assert_eq!(node.disruptions(), 0, "late-epoch +1 adoption is benign");
        assert!(!node.is_settling());
        assert_eq!(node.estimate(), Some(42.0), "the finished epoch was published");
    }

    #[test]
    fn early_jump_is_disruptive_even_by_one_epoch() {
        let mut node = EpochPushSum::new(10.0, 20);
        let mut rng = SmallRng::seed_from_u64(42);
        // Phase 2 of epoch 0: far from rollover.
        for _ in 0..2 {
            let mut sampler = SliceSampler::new(&[]);
            let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
            node.end_round(&mut ctx);
        }
        let msg = EpochMsg { epoch: 1, phase: 1, mass: Mass::averaging(50.0).half() };
        let mut sampler = SliceSampler::new(&[]);
        let mut ctx = RoundCtx { round: 2, rng: &mut rng, peers: &mut sampler };
        node.on_message(1, &msg, &mut ctx);
        assert_eq!(node.disruptions(), 1);
        assert!(node.is_settling());
    }

    #[test]
    fn stale_epoch_mass_is_dropped() {
        let mut node = EpochPushSum::new(10.0, 20).with_clock_offset(45);
        let mut rng = SmallRng::seed_from_u64(43);
        let inbox_before = node.inbox;
        let msg = EpochMsg { epoch: 0, phase: 3, mass: Mass::averaging(99.0) };
        let mut sampler = SliceSampler::new(&[]);
        let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
        node.on_message(1, &msg, &mut ctx);
        assert_eq!(node.inbox, inbox_before, "stale mass must not be absorbed");
        assert_eq!(node.disruptions(), 0);
    }

    #[test]
    fn drifted_cliques_disrupt_each_other_through_one_migrant() {
        // Two 4-host cliques gossiping internally; clique B starts 17
        // ticks behind clique A. One message from A lands in B while B is
        // still mid-epoch: every downstream B host that hears the new
        // epoch early disrupts.
        let epoch_len = 20u64;
        let mut a: Vec<EpochPushSum> = (0..4)
            .map(|i| EpochPushSum::new(f64::from(i), epoch_len).with_clock_offset(17))
            .collect();
        let mut b: Vec<EpochPushSum> =
            (0..4).map(|i| EpochPushSum::new(f64::from(i) + 50.0, epoch_len)).collect();
        let mut rng = SmallRng::seed_from_u64(44);
        drive(&mut a, 0..6, &mut rng); // A rolls to epoch 1 at round 3
        drive(&mut b, 0..6, &mut rng); // B still in epoch 0, phase 6
        assert!(a.iter().all(|n| n.epoch() == 1));
        assert!(b.iter().all(|n| n.epoch() == 0));
        // The migrant push: an A host's share arrives at a B host.
        let msg = EpochMsg {
            epoch: 1,
            phase: a[0].clock().phase() as u32,
            mass: Mass::averaging(0.0).half(),
        };
        let mut sampler = SliceSampler::new(&[]);
        let mut ctx = RoundCtx { round: 6, rng: &mut rng, peers: &mut sampler };
        b[0].on_message(9, &msg, &mut ctx);
        assert_eq!(b[0].disruptions(), 1, "mid-epoch foreign rollover disrupts");
        // The disruption spreads: B0's next pushes carry epoch 1 into the
        // rest of the clique, which is still mid-epoch.
        drive(&mut b, 6..9, &mut rng);
        let disrupted: u64 = b.iter().map(|n| n.disruptions()).sum();
        assert!(disrupted >= 2, "the restart should cascade, got {disrupted}");
        assert!(b.iter().all(|n| n.epoch() >= 1));
    }
}
