//! The epoch-reset baseline (paper §II-C): "the simplest form of dynamic
//! aggregation".
//!
//! Wrap a static protocol and periodically restart it: every `epoch_len`
//! rounds each host resets to its initial state, so errors from departed
//! hosts only survive until the next reset. No leader is needed — messages
//! carry an epoch counter and hosts adopt the highest epoch they see ("weak
//! clock synchronization by annotating each message with a periodically
//! incremented epoch counter").
//!
//! The paper's critique, which the experiment harness reproduces as an
//! ablation: the right epoch length depends on the network's convergence
//! time, which depends on the network size — *itself an aggregate* — and
//! mobile hosts crossing between cliques cause epoch-number turbulence.
//! Too short an epoch never converges; too long an epoch serves stale
//! results for most of its duration.

use crate::error::ProtocolError;
use crate::mass::{Mass, MASS_WIRE_BYTES};
use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};

/// An epoch-annotated Push-Sum message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMsg {
    /// Sender's epoch counter.
    pub epoch: u64,
    /// The mass share.
    pub mass: Mass,
}

/// Push-Sum restarted every `epoch_len` rounds via weak epoch counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPushSum {
    epoch_len: u64,
    value: f64,
    epoch: u64,
    /// Rounds this host has spent in its current epoch (local clock).
    rounds_in_epoch: u64,
    /// Probability per round that this host's local clock fails to tick
    /// (a slept radio, a missed beacon). Drift is what desynchronizes
    /// epoch numbers between cliques — §II-C's disruption scenario.
    drift_prob: f64,
    mass: Mass,
    inbox: Mass,
    /// The final estimate of the previous epoch — what the host reports
    /// while the current epoch is still converging.
    published: Option<f64>,
}

impl EpochPushSum {
    /// An averaging host holding `value` that restarts every `epoch_len`
    /// rounds.
    ///
    /// # Panics
    /// Panics if `epoch_len` is zero; use [`EpochPushSum::try_new`].
    pub fn new(value: f64, epoch_len: u64) -> Self {
        Self::try_new(value, epoch_len).expect("invalid epoch length")
    }

    /// Fallible constructor.
    pub fn try_new(value: f64, epoch_len: u64) -> Result<Self, ProtocolError> {
        if epoch_len == 0 {
            return Err(ProtocolError::InvalidEpochLength(epoch_len));
        }
        Ok(Self {
            epoch_len,
            value,
            epoch: 0,
            rounds_in_epoch: 0,
            drift_prob: 0.0,
            mass: Mass::averaging(value),
            inbox: Mass::ZERO,
            published: Some(value),
        })
    }

    /// Add weak-clock drift: with probability `drift_prob` per round, this
    /// host's local epoch clock does not tick. Drifted hosts fall behind,
    /// their cliques settle on lower epoch numbers, and migrants carrying
    /// higher epochs force disruptive restarts — §II-C's mobility critique
    /// made measurable.
    ///
    /// # Panics
    /// Panics if `drift_prob` is outside `[0, 1]`.
    pub fn with_drift(mut self, drift_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drift_prob), "drift probability must be in [0, 1]");
        self.drift_prob = drift_prob;
        self
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The configured epoch length in rounds.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Reset into epoch `epoch` (publishing the outgoing estimate first).
    fn restart(&mut self, epoch: u64) {
        if let Some(e) = self.mass.estimate() {
            self.published = Some(e);
        }
        self.epoch = epoch;
        self.rounds_in_epoch = 0;
        self.mass = Mass::averaging(self.value);
        self.inbox = Mass::ZERO;
    }
}

impl Estimator for EpochPushSum {
    fn estimate(&self) -> Option<f64> {
        // Report the previous epoch's converged value until the current one
        // is at least half-way through (heuristic: a fresh epoch's estimate
        // is dominated by the host's own value and would be wildly wrong).
        if self.rounds_in_epoch * 2 >= self.epoch_len {
            self.mass.estimate().or(self.published)
        } else {
            self.published.or_else(|| self.mass.estimate())
        }
    }
}

impl PushProtocol for EpochPushSum {
    type Message = EpochMsg;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, EpochMsg)>) {
        // Local clock: advance the epoch when this host has spent
        // `epoch_len` rounds in the current one.
        if self.rounds_in_epoch >= self.epoch_len {
            let next = self.epoch + 1;
            self.restart(next);
        }
        let half = self.mass.half();
        self.inbox = half;
        if let Some(peer) = ctx.sample_peer() {
            out.push((peer, EpochMsg { epoch: self.epoch, mass: half }));
        } else {
            self.inbox += half;
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: &EpochMsg,
        _ctx: &mut RoundCtx<'_>,
    ) -> Option<EpochMsg> {
        use std::cmp::Ordering;
        match msg.epoch.cmp(&self.epoch) {
            Ordering::Greater => {
                // A peer is ahead (clock drift or clique migration): jump
                // forward, losing this epoch's progress — the disruption the
                // paper criticizes.
                self.restart(msg.epoch);
                self.inbox = self.mass.half();
                self.mass = self.inbox; // keep mass consistent pre-end_round
                self.inbox += msg.mass;
            }
            Ordering::Equal => self.inbox += msg.mass,
            Ordering::Less => { /* stale epoch: drop the mass */ }
        }
        None
    }

    fn end_round(&mut self, ctx: &mut RoundCtx<'_>) {
        self.mass = self.inbox;
        self.inbox = Mass::ZERO;
        if self.drift_prob == 0.0 || rand::Rng::gen::<f64>(ctx.rng) >= self.drift_prob {
            self.rounds_in_epoch += 1;
        }
    }

    fn message_bytes(_msg: &EpochMsg) -> usize {
        MASS_WIRE_BYTES + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::SliceSampler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run(values: &[f64], epoch_len: u64, rounds: u64, seed: u64) -> Vec<EpochPushSum> {
        let mut nodes: Vec<EpochPushSum> =
            values.iter().map(|&v| EpochPushSum::new(v, epoch_len)).collect();
        let ids: Vec<NodeId> = (0..nodes.len() as NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for round in 0..rounds {
            let mut queue: Vec<(usize, EpochMsg)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p as usize != i).collect();
                let mut sampler = SliceSampler::new(&peers);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((to as usize, m));
                }
            }
            for (to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                nodes[to].on_message(0, &m, &mut ctx);
            }
            for node in nodes.iter_mut() {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                node.end_round(&mut ctx);
            }
        }
        nodes
    }

    #[test]
    fn converges_within_an_epoch() {
        let values: Vec<f64> = (0..8).map(|i| f64::from(i) * 10.0).collect();
        let nodes = run(&values, 25, 24, 31);
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!((e - 35.0).abs() < 5.0, "estimate {e}");
        }
    }

    #[test]
    fn epochs_advance_in_lockstep() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let nodes = run(&values, 10, 35, 32);
        for n in &nodes {
            assert_eq!(n.epoch(), 3, "after 35 rounds with epoch_len 10");
        }
    }

    #[test]
    fn recovers_after_failures_once_epoch_turns() {
        let values = [10.0, 20.0, 80.0, 90.0];
        let epoch_len = 15u64;
        let mut nodes: Vec<EpochPushSum> =
            values.iter().map(|&v| EpochPushSum::new(v, epoch_len)).collect();
        let mut rng = SmallRng::seed_from_u64(33);
        let mut out = Vec::new();
        let drive = |nodes: &mut Vec<EpochPushSum>,
                     rounds: std::ops::Range<u64>,
                     rng: &mut SmallRng,
                     out: &mut Vec<(NodeId, EpochMsg)>| {
            for round in rounds {
                let ids: Vec<NodeId> = (0..nodes.len() as NodeId).collect();
                let mut queue: Vec<(usize, EpochMsg)> = Vec::new();
                for (i, node) in nodes.iter_mut().enumerate() {
                    let peers: Vec<NodeId> =
                        ids.iter().copied().filter(|&p| p as usize != i).collect();
                    let mut sampler = SliceSampler::new(&peers);
                    let mut ctx = RoundCtx { round, rng, peers: &mut sampler };
                    out.clear();
                    node.begin_round(&mut ctx, out);
                    for (to, m) in out.drain(..) {
                        queue.push((to as usize, m));
                    }
                }
                for (to, m) in queue {
                    let mut sampler = SliceSampler::new(&[]);
                    let mut ctx = RoundCtx { round, rng, peers: &mut sampler };
                    nodes[to].on_message(0, &m, &mut ctx);
                }
                for node in nodes.iter_mut() {
                    let mut sampler = SliceSampler::new(&[]);
                    let mut ctx = RoundCtx { round, rng, peers: &mut sampler };
                    node.end_round(&mut ctx);
                }
            }
        };
        drive(&mut nodes, 0..14, &mut rng, &mut out);
        nodes.truncate(2); // survivors: 10, 20 -> avg 15
                           // Run long enough for a full fresh epoch after the failure.
        drive(&mut nodes, 14..50, &mut rng, &mut out);
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!((e - 15.0).abs() < 3.0, "post-epoch estimate {e} should be ~15");
        }
    }

    #[test]
    fn zero_epoch_rejected() {
        assert!(EpochPushSum::try_new(1.0, 0).is_err());
    }
}
