//! Dynamic value histograms and quantiles (extension).
//!
//! A histogram over fixed buckets is a *vector* of averages: bucket `b`'s
//! occupancy fraction is the network average of the indicator "my value
//! falls in bucket `b`". Running Push-Sum-Revert over the indicator vector
//! therefore maintains the whole value distribution under churn, from
//! which quantiles (median, p90, ...) follow by interpolation. Everything
//! §III establishes for scalar reversion — conservation under stable
//! membership, λ-rate healing after silent failures — carries over
//! component-wise.
//!
//! Cost: `B + 1` doubles per message instead of 2. For modest bucket
//! counts this still undercuts a counting sketch by an order of magnitude.
//!
//! ```
//! use dynagg_core::histogram::{Buckets, DynamicHistogram};
//!
//! // A lone host's distribution is a point mass in its own bucket, so
//! // every quantile reads from that bucket.
//! let host = DynamicHistogram::new(Buckets::new(0.0, 100.0, 10), 35.0, 0.01);
//! let fractions = host.fractions().unwrap();
//! assert!((fractions[3] - 1.0).abs() < 1e-9, "value 35 lands in bucket [30, 40)");
//! let median = host.quantile(0.5).unwrap();
//! assert!((30.0..40.0).contains(&median), "median {median} inside the occupied bucket");
//! ```

use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};
use rand::rngs::SmallRng;
use std::sync::Arc;

/// Fixed-range bucketing of a value domain.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Buckets {
    /// Inclusive lower bound of the domain.
    pub lo: f64,
    /// Exclusive upper bound of the domain.
    pub hi: f64,
    /// Number of equal-width buckets.
    pub count: u32,
}

impl Buckets {
    /// Equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or `count` is zero.
    pub fn new(lo: f64, hi: f64, count: u32) -> Self {
        assert!(hi > lo, "bucket range must be non-empty");
        assert!(count > 0, "need at least one bucket");
        Self { lo, hi, count }
    }

    /// The bucket index of `value` (clamped into range).
    pub fn index_of(&self, value: f64) -> usize {
        let w = (self.hi - self.lo) / f64::from(self.count);
        let idx = ((value - self.lo) / w).floor();
        (idx.max(0.0) as usize).min(self.count as usize - 1)
    }

    /// The lower edge of bucket `b`.
    pub fn lower_edge(&self, b: usize) -> f64 {
        self.lo + (self.hi - self.lo) * b as f64 / f64::from(self.count)
    }

    /// The width of one bucket.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / f64::from(self.count)
    }
}

/// The histogram gossip payload: a weight plus per-bucket value mass.
#[derive(Debug, Clone, PartialEq)]
pub struct HistMsg {
    /// Weight share.
    pub weight: f64,
    /// Per-bucket mass shares.
    pub buckets: Arc<[f64]>,
}

/// One host's dynamic-histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicHistogram {
    geometry: Buckets,
    lambda: f64,
    /// The host's indicator vector (1.0 in its own bucket).
    own: Vec<f64>,
    weight: f64,
    values: Vec<f64>,
    inbox_weight: f64,
    inbox_values: Vec<f64>,
}

impl DynamicHistogram {
    /// A host whose value is `value`, with reversion constant `lambda`.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn new(geometry: Buckets, value: f64, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        let b = geometry.count as usize;
        let mut own = vec![0.0; b];
        own[geometry.index_of(value)] = 1.0;
        Self {
            geometry,
            lambda,
            values: own.clone(),
            own,
            weight: 1.0,
            inbox_weight: 0.0,
            inbox_values: vec![0.0; b],
        }
    }

    /// The bucket geometry.
    pub fn geometry(&self) -> Buckets {
        self.geometry
    }

    /// Update the host's value (moves its indicator and the reversion
    /// anchor).
    pub fn set_value(&mut self, value: f64) {
        self.own.iter_mut().for_each(|x| *x = 0.0);
        self.own[self.geometry.index_of(value)] = 1.0;
    }

    /// The estimated occupancy *fraction* of each bucket (sums to ~1).
    pub fn fractions(&self) -> Option<Vec<f64>> {
        if self.weight.abs() < f64::EPSILON {
            return None;
        }
        Some(self.values.iter().map(|v| (v / self.weight).max(0.0)).collect())
    }

    /// The estimated `q`-quantile (`0 < q < 1`), interpolated within the
    /// crossing bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let fr = self.fractions()?;
        let total: f64 = fr.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for (b, &f) in fr.iter().enumerate() {
            if acc + f >= target {
                let inside = if f > 0.0 { (target - acc) / f } else { 0.0 };
                return Some(self.geometry.lower_edge(b) + inside * self.geometry.width());
            }
            acc += f;
        }
        Some(self.geometry.hi)
    }

    /// The estimated median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The histogram-implied mean (bucket midpoints weighted by fraction).
    pub fn mean(&self) -> Option<f64> {
        let fr = self.fractions()?;
        let total: f64 = fr.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let half = self.geometry.width() * 0.5;
        let s: f64 =
            fr.iter().enumerate().map(|(b, f)| f * (self.geometry.lower_edge(b) + half)).sum();
        Some(s / total)
    }

    /// The reverted outgoing totals `(weight, values)`.
    fn reverted(&self) -> (f64, Vec<f64>) {
        let w = (1.0 - self.lambda) * self.weight + self.lambda;
        let vals = self
            .values
            .iter()
            .zip(&self.own)
            .map(|(v, o)| (1.0 - self.lambda) * v + self.lambda * o)
            .collect();
        (w, vals)
    }
}

impl Estimator for DynamicHistogram {
    /// The primary scalar estimate is the median.
    fn estimate(&self) -> Option<f64> {
        self.median()
    }
}

impl PushProtocol for DynamicHistogram {
    type Message = HistMsg;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, HistMsg)>) {
        let (w, vals) = self.reverted();
        let half_vals: Vec<f64> = vals.iter().map(|v| v * 0.5).collect();
        // Keep the self half.
        self.inbox_weight = w * 0.5;
        self.inbox_values.clear();
        self.inbox_values.extend_from_slice(&half_vals);
        if let Some(peer) = ctx.sample_peer() {
            out.push((peer, HistMsg { weight: w * 0.5, buckets: half_vals.into() }));
        } else {
            self.inbox_weight += w * 0.5;
            for (acc, v) in self.inbox_values.iter_mut().zip(&half_vals) {
                *acc += v;
            }
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: &HistMsg,
        _ctx: &mut RoundCtx<'_>,
    ) -> Option<HistMsg> {
        self.inbox_weight += msg.weight;
        for (acc, v) in self.inbox_values.iter_mut().zip(msg.buckets.iter()) {
            *acc += v;
        }
        None
    }

    fn end_round(&mut self, _ctx: &mut RoundCtx<'_>) {
        self.weight = self.inbox_weight;
        std::mem::swap(&mut self.values, &mut self.inbox_values);
        self.inbox_weight = 0.0;
        self.inbox_values.iter_mut().for_each(|x| *x = 0.0);
    }

    fn message_bytes(msg: &HistMsg) -> usize {
        8 * (1 + msg.buckets.len())
    }
}

/// Pairwise mass equalization + component-wise revert, mirroring the
/// scalar protocol's push/pull mode.
impl crate::protocol::PairwiseProtocol for DynamicHistogram {
    fn exchange(initiator: &mut Self, responder: &mut Self, _rng: &mut SmallRng) {
        let w = (initiator.weight + responder.weight) * 0.5;
        initiator.weight = w;
        responder.weight = w;
        for i in 0..initiator.values.len() {
            let v = (initiator.values[i] + responder.values[i]) * 0.5;
            initiator.values[i] = v;
            responder.values[i] = v;
        }
    }

    fn end_round(&mut self, _round: u64) {
        let (w, vals) = self.reverted();
        self.weight = w;
        self.values = vals;
    }

    fn exchange_bytes(&self) -> usize {
        2 * 8 * (1 + self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PairwiseProtocol;
    use rand::Rng;
    use rand::SeedableRng;

    fn run_pairwise(values: &[f64], lambda: f64, rounds: u64, seed: u64) -> Vec<DynamicHistogram> {
        let geo = Buckets::new(0.0, 100.0, 20);
        let mut nodes: Vec<DynamicHistogram> =
            values.iter().map(|&v| DynamicHistogram::new(geo, v, lambda)).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = nodes.len();
        for round in 0..rounds {
            for i in 0..n {
                let j = (i + 1 + rng.gen_range(0..n - 1)) % n;
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (a, b) = nodes.split_at_mut(hi);
                DynamicHistogram::exchange(&mut a[lo], &mut b[0], &mut rng);
            }
            for node in nodes.iter_mut() {
                PairwiseProtocol::end_round(node, round);
            }
        }
        nodes
    }

    #[test]
    fn bucket_indexing() {
        let b = Buckets::new(0.0, 100.0, 10);
        assert_eq!(b.index_of(0.0), 0);
        assert_eq!(b.index_of(9.99), 0);
        assert_eq!(b.index_of(10.0), 1);
        assert_eq!(b.index_of(99.99), 9);
        assert_eq!(b.index_of(150.0), 9, "clamped");
        assert_eq!(b.index_of(-5.0), 0, "clamped");
        assert_eq!(b.width(), 10.0);
    }

    #[test]
    fn fractions_sum_to_one_and_track_distribution() {
        let values: Vec<f64> = (0..20).map(|i| f64::from(i) * 5.0).collect();
        let nodes = run_pairwise(&values, 0.01, 40, 131);
        for n in nodes.iter().take(4) {
            let fr = n.fractions().unwrap();
            let total: f64 = fr.iter().sum();
            assert!((total - 1.0).abs() < 0.05, "fractions sum {total}");
        }
    }

    #[test]
    fn median_of_uniform_values() {
        let values: Vec<f64> = (0..50).map(|i| f64::from(i) * 2.0).collect(); // 0..98
        let nodes = run_pairwise(&values, 0.01, 50, 132);
        for n in nodes.iter().take(4) {
            let med = n.median().unwrap();
            assert!((med - 50.0).abs() < 10.0, "median {med}");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let values: Vec<f64> = (0..30).map(|i| f64::from(i) * 3.0).collect();
        let nodes = run_pairwise(&values, 0.05, 40, 133);
        let n = &nodes[0];
        let q25 = n.quantile(0.25).unwrap();
        let q50 = n.quantile(0.5).unwrap();
        let q90 = n.quantile(0.9).unwrap();
        assert!(q25 <= q50 && q50 <= q90, "{q25} {q50} {q90}");
    }

    #[test]
    fn histogram_mean_matches_scalar_mean() {
        let values: Vec<f64> = (0..40).map(|i| f64::from(i) * 2.5).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let nodes = run_pairwise(&values, 0.01, 40, 134);
        let m = nodes[0].mean().unwrap();
        assert!((m - truth).abs() < 6.0, "hist mean {m} vs {truth}");
    }

    #[test]
    fn median_heals_after_correlated_failure() {
        let values: Vec<f64> = (0..32).map(|i| f64::from(i) * 3.0).collect(); // 0..93
        let geo = Buckets::new(0.0, 100.0, 20);
        let mut nodes: Vec<DynamicHistogram> =
            values.iter().map(|&v| DynamicHistogram::new(geo, v, 0.1)).collect();
        let mut rng = SmallRng::seed_from_u64(135);
        let drive = |nodes: &mut Vec<DynamicHistogram>,
                     rounds: std::ops::Range<u64>,
                     rng: &mut SmallRng| {
            for round in rounds {
                let n = nodes.len();
                for i in 0..n {
                    let j = (i + 1 + rng.gen_range(0..n - 1)) % n;
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    let (a, b) = nodes.split_at_mut(hi);
                    DynamicHistogram::exchange(&mut a[lo], &mut b[0], rng);
                }
                for node in nodes.iter_mut() {
                    PairwiseProtocol::end_round(node, round);
                }
            }
        };
        drive(&mut nodes, 0..25, &mut rng);
        let before = nodes[0].median().unwrap();
        assert!((before - 48.0).abs() < 10.0, "pre-failure median {before}");
        nodes.truncate(16); // survivors 0..45: median ~24
        drive(&mut nodes, 25..120, &mut rng);
        let after = nodes[0].median().unwrap();
        assert!(
            (after - 24.0).abs() < 10.0,
            "post-failure median {after} should track the survivors"
        );
    }

    #[test]
    fn isolated_host_reports_its_own_bucket() {
        let geo = Buckets::new(0.0, 10.0, 10);
        let n = DynamicHistogram::new(geo, 7.2, 0.1);
        let fr = n.fractions().unwrap();
        assert_eq!(fr[7], 1.0);
        assert!((n.median().unwrap() - 7.5).abs() < 0.6);
    }

    #[test]
    #[should_panic(expected = "bucket range")]
    fn empty_range_rejected() {
        let _ = Buckets::new(5.0, 5.0, 4);
    }
}
