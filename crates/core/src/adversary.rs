//! Semantic adversaries: hosts that follow the protocol but lie.
//!
//! The wire fuzzers prove malformed *bytes* are rejected; this module
//! covers well-formed *lies* — payloads that decode cleanly yet violate
//! the protocol's semantic contract. An [`Adversarial`] wrapper runs the
//! honest protocol unchanged and corrupts only its **outgoing** messages,
//! so an adversary converges on true state internally (the most effective
//! lie is anchored in reality) while feeding the network forged payloads.
//!
//! Three attacks cover the paper's protocol families:
//!
//! * [`Attack::MassInflation`] — scale the value component of every
//!   outgoing mass share. Push-Sum's correctness *is* conservation of
//!   mass (§III), so forged mass compounds round over round and the
//!   estimate diverges without bound. The simulator's `mass_audit`
//!   column (global `Σ value / Σ weight` vs. truth) detects it.
//! * [`Attack::StaleEpochReplay`] — rewrite outgoing epoch annotations to
//!   epoch 0. Honest receivers classify the payload as a stale epoch and
//!   drop the mass (§II-C's weak-sync rule), so the attacker's shares
//!   evaporate: a targeted mass-loss attack that degrades rather than
//!   poisons.
//! * [`Attack::SketchCorruption`] — set phantom low-order cells in
//!   outgoing FM sketches. The forged bits inflate the count estimate,
//!   but damage is structurally bounded: a sketch cell saturates (OR
//!   semantics) instead of compounding, and Count-Sketch-Reset ages
//!   forged cells out once the attacker stops — the paper's §IV-A
//!   argument that "lies age out of the sketch".
//!
//! The wrapper is transparent to both engine families: it implements
//! [`PushProtocol`] with the inner protocol's message type, so the
//! lockstep runner, the scenario registry, and the async node runtime
//! drive it like any honest host.

use crate::epoch::EpochMsg;
use crate::mass::Mass;
use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};
use dynagg_sketch::age::AgeMatrix;
use dynagg_sketch::pcsa::Pcsa;
use std::sync::Arc;

/// What a malicious host does to its outgoing payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attack {
    /// Multiply the value component of outgoing mass by `factor` (weight
    /// untouched, so the lie is undetectable from any single message).
    MassInflation {
        /// Inflation factor per message (> 1 inflates, < 1 deflates).
        factor: f64,
    },
    /// Stamp outgoing epoch messages with epoch 0, phase 0 — a replayed
    /// relic from the network's first epoch.
    StaleEpochReplay,
    /// Set `cells` phantom low-order cells in outgoing sketches,
    /// extending every bin's live-bit run.
    SketchCorruption {
        /// Number of forged cells per message (spread across bins;
        /// `cells / num_bins` is the forged run depth per bin).
        cells: u32,
    },
}

/// A payload an [`Attack`] knows how to forge. Attacks that don't apply
/// to a payload type leave it untouched (a mass-inflation adversary
/// running a sketch protocol simply behaves honestly).
pub trait Corruptible {
    /// Apply `attack` to this outgoing payload in place.
    fn corrupt(&mut self, attack: &Attack);
}

impl Corruptible for Mass {
    fn corrupt(&mut self, attack: &Attack) {
        if let Attack::MassInflation { factor } = attack {
            self.value *= factor;
        }
    }
}

impl Corruptible for EpochMsg {
    fn corrupt(&mut self, attack: &Attack) {
        match attack {
            Attack::MassInflation { factor } => self.mass.value *= factor,
            Attack::StaleEpochReplay => {
                self.epoch = 0;
                self.phase = 0;
            }
            Attack::SketchCorruption { .. } => {}
        }
    }
}

/// Deterministic forged-cell positions: cycle the bins, filling each
/// bin's *low-order* rows bottom-up. An FM estimate reads `R` — the
/// contiguous run of live bits from bit 0 — so only a forged low prefix
/// moves it; isolated high bits are invisible to the estimator.
fn phantom_cells(num_bins: u32, width: u8, cells: u32) -> impl Iterator<Item = (u32, u8)> {
    (0..cells).filter_map(move |i| {
        if num_bins == 0 || width == 0 {
            return None;
        }
        let bin = i % num_bins;
        let row = (i / num_bins) as u8;
        (row < width).then_some((bin, row))
    })
}

impl Corruptible for Arc<AgeMatrix> {
    fn corrupt(&mut self, attack: &Attack) {
        if let Attack::SketchCorruption { cells } = attack {
            let mut forged = (**self).clone();
            for (bin, k) in phantom_cells(forged.num_bins(), forged.width(), *cells) {
                forged.claim_cell(bin, k);
            }
            // Forged cells are not this host's sourced state: release
            // ownership so they age like any other hearsay.
            forged.release_all();
            *self = Arc::new(forged);
        }
    }
}

impl Corruptible for Arc<Pcsa> {
    fn corrupt(&mut self, attack: &Attack) {
        if let Attack::SketchCorruption { cells } = attack {
            let mut forged = (**self).clone();
            for (bin, k) in phantom_cells(forged.num_bins(), forged.width(), *cells) {
                forged.set_cell(bin, k);
            }
            *self = Arc::new(forged);
        }
    }
}

/// A host that runs `P` honestly but may forge its outgoing payloads.
/// Honest instances (`attack = None`) are bit-identical to a bare `P`.
#[derive(Debug, Clone)]
pub struct Adversarial<P> {
    inner: P,
    attack: Option<Attack>,
    /// First round at which the attack activates.
    from_round: u64,
}

impl<P> Adversarial<P> {
    /// An honest host (the wrapper is a no-op).
    pub fn honest(inner: P) -> Self {
        Self { inner, attack: None, from_round: 0 }
    }

    /// A malicious host forging outgoing payloads with `attack` from
    /// round `from_round` onward.
    pub fn malicious(inner: P, attack: Attack, from_round: u64) -> Self {
        Self { inner, attack: Some(attack), from_round }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Is this host configured to attack?
    pub fn is_malicious(&self) -> bool {
        self.attack.is_some()
    }

    fn active_attack(&self, round: u64) -> Option<&Attack> {
        self.attack.as_ref().filter(|_| round >= self.from_round)
    }
}

impl<P: Estimator> Estimator for Adversarial<P> {
    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    fn is_settling(&self) -> bool {
        self.inner.is_settling()
    }

    fn disruptions(&self) -> u64 {
        self.inner.disruptions()
    }

    fn audit_mass(&self) -> Option<Mass> {
        self.inner.audit_mass()
    }
}

impl<P: PushProtocol> PushProtocol for Adversarial<P>
where
    P::Message: Corruptible,
{
    type Message = P::Message;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, Self::Message)>) {
        let start = out.len();
        self.inner.begin_round(ctx, out);
        if let Some(attack) = self.active_attack(ctx.round) {
            for (_, msg) in &mut out[start..] {
                msg.corrupt(attack);
            }
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: &Self::Message,
        ctx: &mut RoundCtx<'_>,
    ) -> Option<Self::Message> {
        let mut reply = self.inner.on_message(from, msg, ctx);
        if let (Some(reply), Some(attack)) = (reply.as_mut(), self.active_attack(ctx.round)) {
            reply.corrupt(attack);
        }
        reply
    }

    fn on_reply(&mut self, from: NodeId, msg: &Self::Message, ctx: &mut RoundCtx<'_>) {
        self.inner.on_reply(from, msg, ctx);
    }

    fn end_round(&mut self, ctx: &mut RoundCtx<'_>) {
        self.inner.end_round(ctx);
    }

    fn message_bytes(msg: &Self::Message) -> usize {
        P::message_bytes(msg)
    }

    fn depart_gracefully(&mut self) {
        self.inner.depart_gracefully();
    }

    fn hint_atomic_exchanges(&mut self) {
        // Forgery happens on the outgoing message Arc, never on the inner
        // state, so the wrapped protocol's lattice argument is unaffected.
        self.inner.hint_atomic_exchanges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_sum::PushSum;
    use crate::push_sum_revert::PushSumRevert;
    use crate::samplers::SliceSampler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn emit<P: PushProtocol>(
        node: &mut P,
        round: u64,
        peers: &[NodeId],
    ) -> Vec<(NodeId, P::Message)>
    where
        P::Message: Clone,
    {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sampler = SliceSampler::new(peers);
        let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
        let mut out = Vec::new();
        node.begin_round(&mut ctx, &mut out);
        out
    }

    #[test]
    fn honest_wrapper_is_transparent() {
        let mut bare = PushSumRevert::new(40.0, 0.1);
        let mut wrapped = Adversarial::honest(PushSumRevert::new(40.0, 0.1));
        let a = emit(&mut bare, 0, &[1]);
        let b = emit(&mut wrapped, 0, &[1]);
        assert_eq!(a, b, "honest wrapper emits identical messages");
        assert_eq!(bare.estimate(), wrapped.estimate());
        assert_eq!(wrapped.audit_mass(), bare.audit_mass());
        assert!(!wrapped.is_malicious());
    }

    #[test]
    fn mass_inflation_scales_value_not_weight() {
        let mut node = Adversarial::malicious(
            PushSum::averaging(10.0),
            Attack::MassInflation { factor: 10.0 },
            0,
        );
        let out = emit(&mut node, 0, &[1]);
        assert_eq!(out.len(), 1);
        let sent = out[0].1;
        assert!((sent.value - 50.0).abs() < 1e-12, "half of 10 inflated ×10: {}", sent.value);
        assert!((sent.weight - 0.5).abs() < 1e-12, "weight untouched: {}", sent.weight);
        // The attacker's own books stay honest: `mass` (replaced only at
        // end_round) still audits the uninflated pre-send value.
        assert_eq!(node.audit_mass().unwrap().value, 10.0, "internal mass is unforged");
    }

    #[test]
    fn attack_waits_for_its_activation_round() {
        let mk = || {
            Adversarial::malicious(
                PushSum::averaging(8.0),
                Attack::MassInflation { factor: 3.0 },
                5,
            )
        };
        let early = emit(&mut mk(), 4, &[1]);
        let late = emit(&mut mk(), 5, &[1]);
        assert_eq!(early[0].1.value, 4.0, "honest before from_round");
        assert_eq!(late[0].1.value, 12.0, "forging from round 5");
    }

    #[test]
    fn stale_replay_rewrites_epoch_annotations() {
        use crate::epoch::EpochPushSum;
        let inner = EpochPushSum::new(10.0, 20).with_clock_offset(45);
        let mut node = Adversarial::malicious(inner, Attack::StaleEpochReplay, 0);
        let out = emit(&mut node, 0, &[1]);
        assert_eq!(out[0].1.epoch, 0, "epoch rewritten to the stale epoch");
        assert_eq!(out[0].1.phase, 0);
        assert_eq!(node.inner().epoch(), 2, "internal clock untouched");
    }

    #[test]
    fn sketch_corruption_inflates_but_saturates() {
        use dynagg_sketch::hash::SplitMix64;
        let h = SplitMix64::new(1);
        let mut m = AgeMatrix::new(16, 16);
        for id in 0..32u64 {
            m.claim_id(&h, id);
        }
        let honest = Arc::new(m);
        let mut forged = honest.clone();
        forged.corrupt(&Attack::SketchCorruption { cells: 64 });
        let mut twice = forged.clone();
        twice.corrupt(&Attack::SketchCorruption { cells: 64 });
        let cutoff = dynagg_sketch::cutoff::Cutoff::paper_uniform();
        let honest_est = honest.estimate(&cutoff);
        let forged_est = forged.estimate(&cutoff);
        assert!(forged_est > honest_est * 2.0, "{honest_est} -> {forged_est}");
        assert_eq!(
            forged.estimate(&cutoff),
            twice.estimate(&cutoff),
            "corruption saturates: repeating the attack adds nothing"
        );
        assert_eq!(forged.owned_cells(), 0, "forged cells are unowned hearsay");
    }

    #[test]
    fn corruption_never_serves_stale_encode_memo() {
        use crate::wire::WireMessage;
        let h = dynagg_sketch::hash::SplitMix64::new(3);
        let mut m = AgeMatrix::new(8, 12);
        for id in 0..8u64 {
            m.claim_id(&h, id);
        }
        let mut msg = Arc::new(m);
        // Warm the version-stamped encode memo, then corrupt in place.
        let honest_bytes = msg.encoded();
        let honest_version = msg.version();
        msg.corrupt(&Attack::SketchCorruption { cells: 32 });
        assert_ne!(msg.version(), honest_version, "corruption must bump the version");
        let forged_bytes = msg.encoded();
        assert_ne!(forged_bytes, honest_bytes, "memo must not serve pre-corruption bytes");
        assert_eq!(msg.encoded_len(), forged_bytes.len());
        let decoded = dynagg_sketch::codec::decode_ages(&forged_bytes).unwrap();
        assert_eq!(Arc::new(decoded), msg, "forged payload round-trips exactly");
    }

    #[test]
    fn pcsa_corruption_sets_high_cells() {
        let mut p = Arc::new(Pcsa::new(8, 16));
        p.corrupt(&Attack::SketchCorruption { cells: 80 });
        assert!(p.estimate() > 1000.0, "forged run depth 10 explodes the count: {}", p.estimate());
        let mut untouched = Arc::new(Pcsa::new(8, 16));
        untouched.corrupt(&Attack::MassInflation { factor: 9.0 });
        assert!(untouched.is_empty(), "inapplicable attacks leave sketches honest");
    }
}
