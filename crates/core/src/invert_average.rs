//! **Invert-Average** (paper §IV-B, Fig. 7): cheap dynamic summation.
//!
//! Sketch summation by multiple insertion scales the sketch with the summed
//! range; Invert-Average instead composes the two dynamic primitives:
//!
//! ```text
//! sum ≈ Push-Sum-Revert(average of values) × Count-Sketch-Reset(host count)
//! ```
//!
//! The errors of the two protocols multiply, but Push-Sum-Revert costs two
//! doubles per message versus kilobytes for a counter matrix, and one
//! Count-Sketch-Reset instance can be amortized across any number of
//! simultaneous sums — "significantly less expensive than the multiple
//! insertion technique".
//!
//! ```
//! use dynagg_core::config::ResetConfig;
//! use dynagg_core::invert_average::InvertAverage;
//! use dynagg_core::protocol::Estimator;
//!
//! // sum ≈ average × count (Fig. 7): both factors are defined from round
//! // zero, so the product is too (a one-host PCSA may well read 0 — the
//! // sketch error the count factor inherits at tiny populations).
//! let host = InvertAverage::new(25.0, 0.05, ResetConfig::paper(100, 9), 1);
//! let sum = host.estimate().unwrap();
//! assert!(sum >= 0.0, "sum estimate defined, got {sum}");
//! ```
//!
//! Implementation note: both sub-protocols gossip to the *same* sampled
//! peer each round (one combined message), matching the paper's model of
//! one exchange per host per iteration.

use crate::config::ResetConfig;
use crate::count_sketch_reset::CountSketchReset;
use crate::mass::Mass;
use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};
use crate::push_sum_revert::PushSumRevert;
use dynagg_sketch::age::AgeMatrix;
use std::sync::Arc;

/// The combined gossip payload: an averaging mass share plus the counter
/// matrix snapshot.
#[derive(Debug, Clone)]
pub struct InvertMsg {
    /// Push-Sum-Revert half-mass.
    pub avg: Mass,
    /// Count-Sketch-Reset matrix snapshot (present on initiations and on
    /// push-pull replies).
    pub count: Option<Arc<AgeMatrix>>,
}

/// One host's Invert-Average state: an averaging instance and a counting
/// instance advanced in lockstep.
#[derive(Debug, Clone)]
pub struct InvertAverage {
    avg: PushSumRevert,
    count: CountSketchReset,
}

impl InvertAverage {
    /// A host holding `value`, with reversion constant `lambda` for the
    /// averaging half and `reset` for the counting half.
    pub fn new(value: f64, lambda: f64, reset: ResetConfig, host_id: u64) -> Self {
        Self {
            avg: PushSumRevert::new(value, lambda),
            count: CountSketchReset::counting(reset, host_id),
        }
    }

    /// The averaging sub-protocol.
    pub fn averager(&self) -> &PushSumRevert {
        &self.avg
    }

    /// The counting sub-protocol.
    pub fn counter(&self) -> &CountSketchReset {
        &self.count
    }

    /// The network-size estimate alone.
    pub fn count_estimate(&self) -> Option<f64> {
        self.count.estimate()
    }

    /// The average estimate alone.
    pub fn avg_estimate(&self) -> Option<f64> {
        self.avg.estimate()
    }

    /// Update the host's local value.
    pub fn set_value(&mut self, value: f64) {
        self.avg.set_value(value);
    }
}

impl Estimator for InvertAverage {
    /// The sum estimate: `avg × count` (Fig. 7 step 3 rearranged: the paper
    /// computes `A/netsize` to get the average *of a sum protocol*; with an
    /// averaging Push-Sum-Revert the sum is the product).
    fn estimate(&self) -> Option<f64> {
        Some(self.avg.estimate()? * self.count.estimate()?)
    }
}

impl PushProtocol for InvertAverage {
    type Message = InvertMsg;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, InvertMsg)>) {
        // Drive both sub-protocols against the same peer: emit the
        // averaging half and the aged matrix snapshot directly, then bind
        // them to one sampled peer (keeps the composite's dynamics
        // identical to the standalone protocols sharing peer choices).
        let avg = self.avg.emit_half();
        let count = self.count.emit_snapshot();
        match ctx.sample_peer() {
            Some(p) => out.push((p, InvertMsg { avg, count: Some(count) })),
            None => self.avg.absorb_unsent(avg),
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: &InvertMsg,
        _ctx: &mut RoundCtx<'_>,
    ) -> Option<InvertMsg> {
        self.avg.absorb(msg.avg);
        let count_reply = msg.count.as_ref().and_then(|m| self.count.absorb(m));
        // Only the counting half replies (the averaging half is pure push
        // here); an empty reply carries no mass.
        count_reply.map(|count| InvertMsg { avg: Mass::ZERO, count: Some(count) })
    }

    fn on_reply(&mut self, from: NodeId, msg: &InvertMsg, ctx: &mut RoundCtx<'_>) {
        if !msg.avg.is_zero() {
            self.avg.absorb(msg.avg);
        }
        if let Some(m) = &msg.count {
            self.count.on_reply(from, m, ctx);
        }
    }

    fn end_round(&mut self, ctx: &mut RoundCtx<'_>) {
        self.avg.conclude_round();
        self.count.end_round(ctx);
    }

    fn message_bytes(msg: &InvertMsg) -> usize {
        crate::mass::MASS_WIRE_BYTES + msg.count.as_ref().map_or(0, |m| m.wire_bytes())
    }

    fn depart_gracefully(&mut self) {
        self.count.depart_gracefully();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SketchConfig;
    use crate::samplers::SliceSampler;
    use dynagg_sketch::cutoff::Cutoff;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn reset_cfg() -> ResetConfig {
        ResetConfig {
            sketch: SketchConfig::new(64, 24, 0xCAFE).unwrap(),
            cutoff: Cutoff::paper_uniform(),
            push_pull: true,
        }
    }

    fn run(values: &[f64], lambda: f64, rounds: u64, seed: u64) -> Vec<InvertAverage> {
        let mut nodes: Vec<InvertAverage> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| InvertAverage::new(v, lambda, reset_cfg(), i as u64))
            .collect();
        let ids: Vec<NodeId> = (0..nodes.len() as NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for round in 0..rounds {
            let mut queue: Vec<(usize, usize, InvertMsg)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p as usize != i).collect();
                let mut sampler = SliceSampler::new(&peers);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((i, to as usize, m));
                }
            }
            for (from, to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                if let Some(reply) = nodes[to].on_message(from as NodeId, &m, &mut ctx) {
                    let mut sampler = SliceSampler::new(&[]);
                    let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                    nodes[from].on_reply(to as NodeId, &reply, &mut ctx);
                }
            }
            for node in nodes.iter_mut() {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                node.end_round(&mut ctx);
            }
        }
        nodes
    }

    #[test]
    fn estimates_the_sum() {
        // 64 hosts each holding 50 => sum = 3200.
        let values = vec![50.0; 64];
        let nodes = run(&values, 0.01, 25, 61);
        let sum: f64 = values.iter().sum();
        for node in nodes.iter().take(8) {
            let e = node.estimate().unwrap();
            let rel = (e - sum).abs() / sum;
            // Errors multiply: allow the count's ~10% plus averaging noise.
            assert!(rel < 0.5, "sum estimate {e:.0} vs {sum} (rel {rel:.2})");
        }
    }

    #[test]
    fn sub_estimates_compose() {
        let values = vec![10.0; 32];
        let nodes = run(&values, 0.01, 20, 62);
        let n = &nodes[0];
        let product = n.avg_estimate().unwrap() * n.count_estimate().unwrap();
        assert!((n.estimate().unwrap() - product).abs() < 1e-9);
    }

    #[test]
    fn heals_after_failure() {
        let values = vec![10.0; 128];
        let mut nodes = run(&values, 0.1, 20, 63);
        nodes.truncate(64);
        // Continue gossiping among survivors.
        let ids: Vec<NodeId> = (0..64 as NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(64);
        let mut out = Vec::new();
        for round in 20..55u64 {
            let mut queue: Vec<(usize, usize, InvertMsg)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p as usize != i).collect();
                let mut sampler = SliceSampler::new(&peers);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((i, to as usize, m));
                }
            }
            for (from, to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                if let Some(reply) = nodes[to].on_message(from as NodeId, &m, &mut ctx) {
                    let mut sampler = SliceSampler::new(&[]);
                    let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                    nodes[from].on_reply(to as NodeId, &reply, &mut ctx);
                }
            }
            for node in nodes.iter_mut() {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                node.end_round(&mut ctx);
            }
        }
        let target = 640.0; // 64 hosts × 10
        let est = nodes[0].estimate().unwrap();
        assert!(
            (est - target).abs() / target < 0.5,
            "healed sum estimate {est:.0} should approach {target}"
        );
    }

    #[test]
    fn message_bytes_dominated_by_counter_matrix() {
        // The bandwidth claim: the averaging half is ~16 bytes, the matrix
        // kilobytes. Verify accounting reflects that.
        let cfg = reset_cfg();
        let node = InvertAverage::new(1.0, 0.1, cfg, 0);
        let msg = InvertMsg {
            avg: Mass::averaging(1.0),
            count: Some(Arc::new(node.counter().ages().clone())),
        };
        let with_matrix = InvertAverage::message_bytes(&msg);
        let without =
            InvertAverage::message_bytes(&InvertMsg { avg: Mass::averaging(1.0), count: None });
        assert_eq!(without, 16);
        assert!(with_matrix > 1000, "matrix snapshot is kilobytes: {with_matrix}");
    }
}
