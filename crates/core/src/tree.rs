//! A TAG-style spanning-tree aggregation baseline (related work, paper §VI).
//!
//! TAG, Mobile Agents and SPIN "flood small user requests for data through
//! the entire network and then use the flood path to build a spanning
//! tree. Data is then passed up the spanning tree and aggregated where
//! possible." This module implements that pattern, simplified to the round
//! model:
//!
//! * the root floods `Request(level)` every round; hosts adopt the lowest
//!   level they hear as their parent (re-flooding keeps the tree fresh
//!   under mobility),
//! * every host sends its partial aggregate `(sum, count)` — its own value
//!   plus its children's last reports — one hop up,
//! * the root combines partials into the average and floods it back down.
//!
//! Child reports expire after `child_timeout` rounds so departed subtrees
//! eventually drop out — but until they do, the root serves stale data, and
//! every re-parenting event double-counts or loses subtrees for a few
//! rounds. The ablation benches quantify exactly this against the
//! unstructured protocols; the paper's argument is that in highly dynamic
//! networks the tree never stabilizes.
//!
//! ```
//! use dynagg_core::protocol::Estimator;
//! use dynagg_core::tree::TagTree;
//!
//! // The root is level 0 and serves its own value until partials arrive;
//! // a non-root host has no estimate before it joins the tree.
//! let root = TagTree::new(40.0, true, 3);
//! assert_eq!(root.level(), Some(0));
//! assert_eq!(root.estimate(), Some(40.0));
//! let leaf = TagTree::new(10.0, false, 3);
//! assert_eq!(leaf.level(), None);
//! assert_eq!(leaf.estimate(), None);
//! ```

use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};
use std::collections::HashMap;

/// TAG gossip payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeMsg {
    /// Tree-building flood: "my level is `level`; adopt me as parent and be
    /// `level + 1`".
    Request {
        /// Sender's hop distance from the root.
        level: u32,
    },
    /// A partial aggregate flowing toward the root.
    Partial {
        /// Sum of values in the sender's subtree.
        sum: f64,
        /// Number of hosts in the sender's subtree.
        count: u64,
    },
    /// The computed aggregate flooding back down.
    Aggregate {
        /// The network average computed at the root.
        value: f64,
        /// Root-assigned sequence number. Hosts only adopt and re-flood
        /// aggregates newer than anything they have seen — without this,
        /// stale values circulate around cycles in the topology forever.
        seq: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct ChildReport {
    sum: f64,
    count: u64,
    last_round: u64,
}

/// One host's TAG-style aggregation state.
#[derive(Debug, Clone)]
pub struct TagTree {
    value: f64,
    is_root: bool,
    level: Option<u32>,
    parent: Option<NodeId>,
    children: HashMap<NodeId, ChildReport>,
    child_timeout: u64,
    estimate: Option<f64>,
    /// Sequence number of the newest aggregate seen.
    agg_seq: u64,
    /// Aggregate pending re-flood next round: `(value, seq)`.
    forward: Option<(f64, u64)>,
    neighbor_buf: Vec<NodeId>,
}

impl TagTree {
    /// A host holding `value`. Exactly one host per network must be the
    /// root (the query leader). `child_timeout` is the number of rounds a
    /// silent child's report survives (TAG's child timeout).
    pub fn new(value: f64, is_root: bool, child_timeout: u64) -> Self {
        Self {
            value,
            is_root,
            level: is_root.then_some(0),
            parent: None,
            children: HashMap::new(),
            child_timeout: child_timeout.max(1),
            estimate: is_root.then_some(value),
            agg_seq: 0,
            forward: None,
            neighbor_buf: Vec::new(),
        }
    }

    /// This host's hop distance from the root, once joined.
    pub fn level(&self) -> Option<u32> {
        self.level
    }

    /// This host's parent in the tree, once joined.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Number of live (unexpired) child reports.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// The subtree partial this host would report: its own value plus all
    /// live child reports.
    pub fn partial(&self) -> (f64, u64) {
        let mut sum = self.value;
        let mut count = 1u64;
        for r in self.children.values() {
            sum += r.sum;
            count += r.count;
        }
        (sum, count)
    }
}

impl Estimator for TagTree {
    fn estimate(&self) -> Option<f64> {
        self.estimate
    }
}

impl PushProtocol for TagTree {
    type Message = TreeMsg;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, TreeMsg)>) {
        // Flood tree construction from any joined host.
        if let Some(level) = self.level {
            self.neighbor_buf.clear();
            ctx.peers.neighbors(ctx.rng, &mut self.neighbor_buf);
            for &n in &self.neighbor_buf {
                out.push((n, TreeMsg::Request { level }));
            }
            // Flood the aggregate downstream.
            if let Some((value, seq)) = self.forward.take() {
                for &n in &self.neighbor_buf {
                    out.push((n, TreeMsg::Aggregate { value, seq }));
                }
            }
        }
        // Report up.
        if let Some(parent) = self.parent {
            let (sum, count) = self.partial();
            out.push((parent, TreeMsg::Partial { sum, count }));
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: &TreeMsg,
        ctx: &mut RoundCtx<'_>,
    ) -> Option<TreeMsg> {
        match *msg {
            TreeMsg::Request { level } => {
                if !self.is_root {
                    let my_level = level + 1;
                    if self.level.is_none_or(|l| my_level < l) {
                        self.level = Some(my_level);
                        self.parent = Some(from);
                        self.children.clear(); // old subtree is stale
                    }
                }
            }
            TreeMsg::Partial { sum, count } => {
                if Some(from) != self.parent {
                    self.children.insert(from, ChildReport { sum, count, last_round: ctx.round });
                }
            }
            TreeMsg::Aggregate { value, seq } => {
                if !self.is_root && seq > self.agg_seq {
                    self.agg_seq = seq;
                    self.estimate = Some(value);
                    self.forward = Some((value, seq)); // flood downstream once
                }
            }
        }
        None
    }

    fn end_round(&mut self, ctx: &mut RoundCtx<'_>) {
        // Expire silent children.
        let horizon = ctx.round.saturating_sub(self.child_timeout);
        self.children.retain(|_, r| r.last_round >= horizon);
        if self.is_root {
            let (sum, count) = self.partial();
            let avg = sum / count as f64;
            self.estimate = Some(avg);
            self.agg_seq = ctx.round + 1; // fresh epoch of the aggregate
            self.forward = Some((avg, self.agg_seq));
        }
    }

    fn message_bytes(msg: &TreeMsg) -> usize {
        match msg {
            TreeMsg::Request { .. } => 4,
            TreeMsg::Partial { .. } => 16,
            TreeMsg::Aggregate { .. } => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::SliceSampler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Drive a TAG network over a fixed neighbor topology (ring + chords to
    /// make level assignment interesting).
    fn run(values: &[f64], rounds: u64, seed: u64) -> Vec<TagTree> {
        let n = values.len();
        let mut nodes: Vec<TagTree> =
            values.iter().enumerate().map(|(i, &v)| TagTree::new(v, i == 0, 3)).collect();
        // ring topology
        let neighbors: Vec<Vec<NodeId>> =
            (0..n).map(|i| vec![((i + 1) % n) as NodeId, ((i + n - 1) % n) as NodeId]).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for round in 0..rounds {
            let mut queue: Vec<(usize, usize, TreeMsg)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let mut sampler = SliceSampler::new(&neighbors[i]).with_broadcast_cap(8);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((i, to as usize, m));
                }
            }
            for (from, to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                nodes[to].on_message(from as NodeId, &m, &mut ctx);
            }
            for node in nodes.iter_mut() {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                node.end_round(&mut ctx);
            }
        }
        nodes
    }

    #[test]
    fn tree_forms_with_correct_levels() {
        let values = vec![1.0; 8];
        let nodes = run(&values, 12, 71);
        assert_eq!(nodes[0].level(), Some(0));
        // Ring of 8: levels are min hop distance, max 4.
        for (i, n) in nodes.iter().enumerate() {
            let expect = (i.min(8 - i)) as u32;
            assert_eq!(n.level(), Some(expect), "node {i}");
        }
    }

    #[test]
    fn root_computes_the_average() {
        let values: Vec<f64> = (0..8).map(|i| f64::from(i) * 10.0).collect();
        let nodes = run(&values, 20, 72);
        let avg = 35.0;
        let root_est = nodes[0].estimate().unwrap();
        assert!((root_est - avg).abs() < 1.0, "root estimate {root_est}");
    }

    #[test]
    fn aggregate_disseminates_to_leaves() {
        let values: Vec<f64> = (0..8).map(|i| f64::from(i) * 10.0).collect();
        let nodes = run(&values, 25, 73);
        for (i, n) in nodes.iter().enumerate() {
            let e = n.estimate().expect("every host should have received the aggregate");
            assert!((e - 35.0).abs() < 2.0, "node {i} estimate {e}");
        }
    }

    #[test]
    fn child_reports_expire() {
        let mut root = TagTree::new(10.0, true, 2);
        let mut rng = SmallRng::seed_from_u64(74);
        // Receive a child partial at round 0.
        {
            let mut sampler = SliceSampler::new(&[]);
            let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
            root.on_message(5, &TreeMsg::Partial { sum: 90.0, count: 1 }, &mut ctx);
            root.end_round(&mut ctx);
        }
        assert_eq!(root.child_count(), 1);
        assert_eq!(root.estimate(), Some(50.0));
        // Child goes silent; after timeout the report drops and the root's
        // estimate collapses to its own value — the staleness failure mode.
        for round in 1..6u64 {
            let mut sampler = SliceSampler::new(&[]);
            let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
            root.end_round(&mut ctx);
        }
        assert_eq!(root.child_count(), 0);
        assert_eq!(root.estimate(), Some(10.0));
    }
}
