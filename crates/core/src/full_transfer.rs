//! Push-Sum-Revert with the **Full-Transfer** optimization (paper §III-A,
//! Fig. 4).
//!
//! Plain Push-Sum-Revert leaves half of a host's mass at home each round,
//! so its estimate stays correlated with its own initial value — a hard
//! floor on accuracy proportional to `λ·|v₀ − avg|`. Full-Transfer removes
//! the correlation by exporting the host's *entire* mass, split into `N`
//! parcels sent to independently selected peers. The host then estimates
//! from *imported* mass only, averaged over the last `T` rounds in which
//! any mass arrived (rounds with no arrivals are skipped, §III-A).
//!
//! The variance of a single round's estimate goes up (the host may receive
//! 0, 1, or many parcels), but averaging the `T`-round window more than
//! compensates: Fig. 10b shows λ=0.5 reaching σ≈2.13 where the basic
//! protocol sits near 12, and λ=0.1 reaching σ≈0.694.
//!
//! ```
//! use dynagg_core::full_transfer::FullTransfer;
//! use dynagg_core::protocol::{Estimator, PushProtocol, RoundCtx};
//! use dynagg_core::samplers::SliceSampler;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Fig. 4: the sender's *entire* mass leaves in N = 4 parcels.
//! let mut rng = SmallRng::seed_from_u64(1);
//! let mut sender = FullTransfer::paper(10.0, 0.1);
//! let mut receiver = FullTransfer::paper(50.0, 0.1);
//! let mut out = Vec::new();
//! let mut sampler = SliceSampler::new(&[1]);
//! let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
//! sender.begin_round(&mut ctx, &mut out);
//! assert_eq!(out.len(), 4);
//! for (_, parcel) in &out {
//!     receiver.on_message(0, parcel, &mut ctx);
//! }
//! receiver.end_round(&mut ctx);
//! // The receiver estimates from imported mass only: the sender's
//! // reverted total, 0.9·10 + 0.1·10 = 10.
//! assert!((receiver.estimate().unwrap() - 10.0).abs() < 1e-9);
//! ```

use crate::config::FullTransferConfig;
use crate::error::ProtocolError;
use crate::mass::{Mass, MASS_WIRE_BYTES};
use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};
use std::collections::VecDeque;

/// One host's Full-Transfer Push-Sum-Revert state.
#[derive(Debug, Clone, PartialEq)]
pub struct FullTransfer {
    cfg: FullTransferConfig,
    initial: Mass,
    mass: Mass,
    inbox: Mass,
    received_any: bool,
    /// Per-round imported mass for the last `window` receiving rounds.
    history: VecDeque<Mass>,
    /// Reused buffer for parcel targets.
    targets: Vec<NodeId>,
    last_estimate: Option<f64>,
}

impl FullTransfer {
    /// An averaging host with the paper's Fig. 10b parameters (N=4, T=3).
    pub fn paper(value: f64, lambda: f64) -> Self {
        Self::from_config(value, FullTransferConfig::paper(lambda).expect("invalid lambda"))
    }

    /// Fallible constructor with explicit parcel count and window.
    pub fn try_new(
        value: f64,
        lambda: f64,
        parcels: u32,
        window: usize,
    ) -> Result<Self, ProtocolError> {
        Ok(Self::from_config(value, FullTransferConfig::new(lambda, parcels, window)?))
    }

    /// Construct from a validated config.
    pub fn from_config(value: f64, cfg: FullTransferConfig) -> Self {
        let initial = Mass::averaging(value);
        Self {
            cfg,
            initial,
            mass: initial,
            inbox: Mass::ZERO,
            received_any: false,
            history: VecDeque::with_capacity(cfg.window + 1),
            targets: Vec::with_capacity(cfg.parcels as usize),
            last_estimate: initial.estimate(),
        }
    }

    /// Protocol parameters.
    pub fn config(&self) -> FullTransferConfig {
        self.cfg
    }

    /// Current (post-exchange) mass. After a round with no arrivals this is
    /// zero — the host's estimate then comes entirely from its window.
    pub fn mass(&self) -> Mass {
        self.mass
    }

    /// The windowed mass the estimate is computed from.
    pub fn window_mass(&self) -> Mass {
        self.history.iter().copied().fold(Mass::ZERO, |a, b| a + b)
    }

    /// Update the host's local value (moves the reversion anchor).
    pub fn set_value(&mut self, value: f64) {
        self.initial = Mass::averaging(value);
    }
}

impl Estimator for FullTransfer {
    fn estimate(&self) -> Option<f64> {
        self.window_mass().estimate().or(self.last_estimate)
    }
}

impl PushProtocol for FullTransfer {
    type Message = Mass;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, Mass)>) {
        // Export everything: (1−λ)·mass + λ·initial, in N equal parcels.
        let total = self.mass.revert_toward(self.initial, self.cfg.lambda);
        let parcel = total.parcel(self.cfg.parcels);
        self.targets.clear();
        ctx.sample_peers(self.cfg.parcels as usize, &mut self.targets);
        if self.targets.is_empty() {
            // Isolated: the whole mass stays home (counts as received so the
            // window keeps tracking the host's own anchor).
            self.inbox += total;
            self.received_any = true;
            return;
        }
        // If the environment returned fewer peers than parcels (tiny or
        // sparse networks), the unsent remainder stays home.
        for &t in &self.targets {
            out.push((t, parcel));
        }
        let unsent = self.cfg.parcels as usize - self.targets.len();
        if unsent > 0 {
            self.inbox += parcel.scale(unsent as f64);
            self.received_any = true;
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &Mass, _ctx: &mut RoundCtx<'_>) -> Option<Mass> {
        self.inbox += *msg;
        self.received_any = true;
        None
    }

    fn end_round(&mut self, _ctx: &mut RoundCtx<'_>) {
        self.mass = self.inbox;
        self.inbox = Mass::ZERO;
        if self.received_any {
            self.history.push_back(self.mass);
            while self.history.len() > self.cfg.window {
                self.history.pop_front();
            }
        }
        self.received_any = false;
        if let Some(e) = self.window_mass().estimate() {
            self.last_estimate = Some(e);
        }
    }

    fn message_bytes(_msg: &Mass) -> usize {
        MASS_WIRE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::{IsolatedSampler, SliceSampler};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Drive a small all-to-all full-transfer network.
    fn run(values: &[f64], lambda: f64, rounds: u64, seed: u64) -> Vec<FullTransfer> {
        let mut nodes: Vec<FullTransfer> =
            values.iter().map(|&v| FullTransfer::paper(v, lambda)).collect();
        let ids: Vec<NodeId> = (0..nodes.len() as NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for round in 0..rounds {
            let mut queue: Vec<(usize, Mass)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p as usize != i).collect();
                let mut sampler = SliceSampler::new(&peers);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((to as usize, m));
                }
            }
            for (to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                nodes[to].on_message(0, &m, &mut ctx);
            }
            for node in nodes.iter_mut() {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                node.end_round(&mut ctx);
            }
        }
        nodes
    }

    #[test]
    fn converges_to_average() {
        let values: Vec<f64> = (0..12).map(|i| f64::from(i) * 10.0).collect();
        let avg = 55.0;
        let nodes = run(&values, 0.1, 60, 11);
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!((e - avg).abs() < 8.0, "estimate {e} vs {avg}");
        }
    }

    #[test]
    fn conserves_mass_without_churn() {
        let values = [10.0, 40.0, 70.0, 100.0];
        let nodes = run(&values, 0.1, 15, 12);
        // Current masses sum to the initial totals (window history is a
        // read-side artifact, not mass).
        let total: Mass = nodes.iter().map(|n| n.mass()).fold(Mass::ZERO, |a, b| a + b);
        assert!((total.weight - 4.0).abs() < 1e-6, "weight {}", total.weight);
        assert!((total.value - 220.0).abs() < 1e-6, "value {}", total.value);
    }

    #[test]
    fn window_skips_empty_rounds() {
        let mut n = FullTransfer::paper(50.0, 0.1);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut out = Vec::new();

        // Round 0: a peer exists; node exports everything and receives nothing.
        let peers = [1u32];
        let mut sampler = SliceSampler::new(&peers);
        let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
        n.begin_round(&mut ctx, &mut out);
        assert_eq!(out.len(), 4, "all four parcels exported");
        n.end_round(&mut ctx);
        assert!(n.mass().is_zero(), "entire mass exported");
        // History did not record the empty round...
        assert_eq!(n.history.len(), 0);
        // ...but the estimate falls back to the last defined value.
        assert_eq!(n.estimate(), Some(50.0));
    }

    #[test]
    fn window_length_is_bounded() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let nodes = run(&values, 0.1, 30, 14);
        for n in &nodes {
            assert!(n.history.len() <= n.config().window);
        }
    }

    #[test]
    fn isolated_host_reverts_to_own_value() {
        let mut n = FullTransfer::paper(42.0, 0.5);
        // Poison the estimate with foreign mass first.
        n.mass = Mass::new(1.0, 99.0);
        let mut rng = SmallRng::seed_from_u64(15);
        for round in 0..30 {
            let mut sampler = IsolatedSampler;
            let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
            let mut out = Vec::new();
            n.begin_round(&mut ctx, &mut out);
            assert!(out.is_empty());
            n.end_round(&mut ctx);
        }
        let e = n.estimate().unwrap();
        assert!((e - 42.0).abs() < 1.0, "isolated estimate {e} should revert to 42");
    }

    #[test]
    fn estimate_decorrelates_from_own_value() {
        // The point of full transfer: a host whose value is an extreme
        // outlier should estimate near the average, not near itself.
        let mut values = vec![50.0; 15];
        values.push(1000.0); // outlier host 15
        let nodes = run(&values, 0.1, 60, 16);
        let avg = (50.0 * 15.0 + 1000.0) / 16.0; // 109.375
        let outlier_est = nodes[15].estimate().unwrap();
        assert!(
            (outlier_est - avg).abs() < 0.35 * avg,
            "outlier's estimate {outlier_est} should sit near the network average {avg}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(FullTransfer::try_new(1.0, 0.1, 0, 3).is_err());
        assert!(FullTransfer::try_new(1.0, 0.1, 4, 0).is_err());
        assert!(FullTransfer::try_new(1.0, 7.0, 4, 3).is_err());
    }
}
