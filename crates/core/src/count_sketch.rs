//! Static Sketch-Count (paper Fig. 2; Considine et al. 2004).
//!
//! Every host contributes identifiers to a PCSA counting sketch — one
//! identifier to count hosts, `v` identifiers to sum values — and gossips
//! the whole sketch. Receivers OR-merge, which is idempotent, so redundant
//! delivery is free and the estimate converges to the count of *all
//! identifiers ever inserted*.
//!
//! That monotonicity is the failure mode motivating Count-Sketch-Reset:
//! "unless hosts remove their contribution to the systemwide bit vector
//! before departing, the estimate increases monotonically" (§II-B) — and a
//! host cannot remove its contribution, because it cannot know whether
//! another live host sources the same bit.
//!
//! ```
//! use dynagg_core::config::SketchConfig;
//! use dynagg_core::count_sketch::CountSketch;
//! use dynagg_core::protocol::{Estimator, PushProtocol, RoundCtx};
//! use dynagg_core::samplers::SliceSampler;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Merging is an idempotent OR: absorbing a peer's sketch twice
//! // changes nothing (Fig. 2 step 3).
//! let cfg = SketchConfig::paper(1_000, 7);
//! let mut rng = SmallRng::seed_from_u64(2);
//! let mut a = CountSketch::counting(cfg, 1);
//! let b = CountSketch::counting(cfg, 2);
//! let snapshot = std::sync::Arc::new(b.sketch().clone());
//! let mut sampler = SliceSampler::new(&[]);
//! let mut ctx = RoundCtx { round: 0, rng: &mut rng, peers: &mut sampler };
//! a.on_message(1, &snapshot, &mut ctx);
//! let once = a.estimate();
//! a.on_message(1, &snapshot, &mut ctx);
//! assert_eq!(a.estimate(), once, "redundant delivery is free");
//! ```

use crate::config::SketchConfig;
use crate::protocol::{Estimator, NodeId, PushProtocol, RoundCtx};
use dynagg_sketch::hash::SplitMix64;
use dynagg_sketch::pcsa::Pcsa;
use dynagg_sketch::sum::insert_value;
use std::sync::Arc;

/// One host's static Sketch-Count state.
#[derive(Debug, Clone)]
pub struct CountSketch {
    sketch: Pcsa,
    /// Reply with our own sketch on receipt (push-pull message exchange).
    /// Messages are `Arc`-shared, so the reply and any fan-out reuse one
    /// sketch allocation.
    push_pull: bool,
}

impl CountSketch {
    /// A host counting *hosts*: inserts one identifier (`host_id`).
    pub fn counting(cfg: SketchConfig, host_id: u64) -> Self {
        let hasher = SplitMix64::new(cfg.hash_seed);
        let mut sketch = Pcsa::new(cfg.bins, cfg.width);
        sketch.insert(&hasher, host_id);
        Self { sketch, push_pull: true }
    }

    /// A host registering `value` identifiers (sketch summation). `value`
    /// identifiers cost `O(value)` once, at construction.
    pub fn summing(cfg: SketchConfig, host_id: u64, value: u64) -> Self {
        let hasher = SplitMix64::new(cfg.hash_seed);
        let mut sketch = Pcsa::new(cfg.bins, cfg.width);
        insert_value(&mut sketch, &hasher, host_id, value);
        Self { sketch, push_pull: true }
    }

    /// Disable push-pull replies (pure push gossip, exactly Fig. 2).
    pub fn push_only(mut self) -> Self {
        self.push_pull = false;
        self
    }

    /// The local sketch view.
    pub fn sketch(&self) -> &Pcsa {
        &self.sketch
    }
}

impl Estimator for CountSketch {
    fn estimate(&self) -> Option<f64> {
        Some(self.sketch.estimate())
    }
}

impl PushProtocol for CountSketch {
    type Message = Arc<Pcsa>;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, Arc<Pcsa>)>) {
        if let Some(peer) = ctx.sample_peer() {
            out.push((peer, Arc::new(self.sketch.clone())));
        }
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: &Arc<Pcsa>,
        _ctx: &mut RoundCtx<'_>,
    ) -> Option<Arc<Pcsa>> {
        // Reply *before* merging: the reply is this host's own view, which
        // the initiator does not have yet (sending the merged view would be
        // fine too — OR is idempotent — but costs an extra clone).
        let reply = self.push_pull.then(|| Arc::new(self.sketch.clone()));
        self.sketch.merge(msg);
        reply
    }

    fn on_reply(&mut self, _from: NodeId, msg: &Arc<Pcsa>, _ctx: &mut RoundCtx<'_>) {
        self.sketch.merge(msg);
    }

    fn end_round(&mut self, _ctx: &mut RoundCtx<'_>) {}

    fn message_bytes(msg: &Arc<Pcsa>) -> usize {
        msg.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::SliceSampler;
    use dynagg_sketch::estimate::expected_error;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg() -> SketchConfig {
        SketchConfig::new(64, 24, 0xFEED).unwrap()
    }

    fn run(n: usize, rounds: u64, seed: u64) -> Vec<CountSketch> {
        let mut nodes: Vec<CountSketch> =
            (0..n).map(|i| CountSketch::counting(cfg(), i as u64)).collect();
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for round in 0..rounds {
            let mut queue: Vec<(usize, usize, Arc<Pcsa>)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p as usize != i).collect();
                let mut sampler = SliceSampler::new(&peers);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((i, to as usize, m));
                }
            }
            for (from, to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                if let Some(reply) = nodes[to].on_message(from as NodeId, &m, &mut ctx) {
                    let mut sampler = SliceSampler::new(&[]);
                    let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                    nodes[from].on_reply(to as NodeId, &reply, &mut ctx);
                }
            }
            for node in nodes.iter_mut() {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                node.end_round(&mut ctx);
            }
        }
        nodes
    }

    #[test]
    fn all_hosts_converge_to_network_size() {
        let n = 500;
        let nodes = run(n, 20, 41);
        // After convergence every host holds the same (union) sketch.
        let first = nodes[0].sketch().clone();
        for node in &nodes {
            assert_eq!(node.sketch(), &first, "gossip should reach a fixed point");
        }
        let est = nodes[0].estimate().unwrap();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 3.0 * expected_error(64), "est {est:.0} rel {rel:.3}");
    }

    #[test]
    fn summing_counts_identifiers() {
        let mut a = CountSketch::summing(cfg(), 1, 700);
        let b = CountSketch::summing(cfg(), 2, 300);
        a.sketch.merge(b.sketch());
        let est = a.estimate().unwrap();
        let rel = (est - 1000.0).abs() / 1000.0;
        assert!(rel < 3.0 * expected_error(64), "sum est {est:.0}");
    }

    #[test]
    fn estimate_is_monotone_in_rounds() {
        // The motivating defect: merges only ever add bits.
        let n = 200;
        let mut prev = 0.0;
        for rounds in [1u64, 3, 6, 12] {
            let nodes = run(n, rounds, 42);
            let est = nodes[0].estimate().unwrap();
            assert!(est >= prev - 1e-9, "estimate decreased: {prev} -> {est}");
            prev = est;
        }
    }

    #[test]
    fn departed_hosts_keep_inflating_the_estimate() {
        // Converge 300 hosts, remove 150, keep gossiping: the estimate must
        // NOT drop (static sketches cannot heal).
        let n = 300;
        let mut nodes = run(n, 15, 43);
        let before = nodes[0].estimate().unwrap();
        nodes.truncate(150);
        // keep gossiping among survivors
        let ids: Vec<NodeId> = (0..150 as NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(44);
        let mut out = Vec::new();
        for round in 0..15u64 {
            let mut queue: Vec<(usize, Arc<Pcsa>)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p as usize != i).collect();
                let mut sampler = SliceSampler::new(&peers);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                out.clear();
                node.begin_round(&mut ctx, &mut out);
                for (to, m) in out.drain(..) {
                    queue.push((to as usize, m));
                }
            }
            for (to, m) in queue {
                let mut sampler = SliceSampler::new(&[]);
                let mut ctx = RoundCtx { round, rng: &mut rng, peers: &mut sampler };
                nodes[to].on_message(0, &m, &mut ctx);
            }
        }
        let after = nodes[0].estimate().unwrap();
        assert!(
            after >= before - 1e-9,
            "static sketch estimate must not heal: before {before}, after {after}"
        );
    }
}
