//! The `(weight, value)` mass vector of Push-Sum-family protocols.
//!
//! Kempe et al. call the pair of a host's weight `w` and sum `v` its
//! **mass**. The averaging protocols never create or destroy mass during an
//! exchange ("conservation of mass", paper §II-A / §III); they only move it
//! between hosts, which is why the derivable network-wide estimate `Σv/Σw`
//! is invariant while membership is stable.

use std::ops::{Add, AddAssign, Mul, Sub};

/// A mass vector `(weight, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Mass {
    /// Normalization weight `w`.
    pub weight: f64,
    /// Value sum `v`.
    pub value: f64,
}

impl Mass {
    /// Zero mass.
    pub const ZERO: Mass = Mass { weight: 0.0, value: 0.0 };

    /// Mass `(w, v)`.
    #[inline]
    pub const fn new(weight: f64, value: f64) -> Self {
        Self { weight, value }
    }

    /// The canonical initial mass of an *averaging* host: `(1, value)`.
    #[inline]
    pub const fn averaging(value: f64) -> Self {
        Self { weight: 1.0, value }
    }

    /// The initial mass of a *summing* host in Kempe-style Push-Sum: every
    /// host holds `(0, value)` except one root with `(1, value)`, so
    /// `Σv/Σw = Σv`. (Requires a distinguished root; the paper's
    /// Invert-Average protocol removes that requirement.)
    #[inline]
    pub const fn summing(value: f64, is_root: bool) -> Self {
        Self { weight: if is_root { 1.0 } else { 0.0 }, value }
    }

    /// `v / w`, the local estimate. `None` when the weight is too small to
    /// divide meaningfully (e.g. a Full-Transfer host that received nothing
    /// this round).
    #[inline]
    pub fn estimate(&self) -> Option<f64> {
        (self.weight.abs() > f64::EPSILON).then(|| self.value / self.weight)
    }

    /// Multiply both components by `f` (parcel splitting, reversion decay).
    #[inline]
    pub fn scale(&self, f: f64) -> Mass {
        Mass { weight: self.weight * f, value: self.value * f }
    }

    /// Split into `n` equal parcels (returns one parcel; callers send it
    /// `n` times — parcels are identical, Fig. 4 step 2).
    #[inline]
    pub fn parcel(&self, n: u32) -> Mass {
        debug_assert!(n > 0);
        self.scale(1.0 / f64::from(n))
    }

    /// Half the mass (the classic Push-Sum share, Fig. 1 step 2).
    #[inline]
    pub fn half(&self) -> Mass {
        self.scale(0.5)
    }

    /// True when both components are (almost) zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.weight.abs() < f64::EPSILON && self.value.abs() < f64::EPSILON
    }

    /// The reverted mass `(1−λ)·self + λ·initial` (paper §III): the local
    /// decay toward a host's initial mass that gives Push-Sum-Revert its
    /// self-healing behaviour.
    #[inline]
    pub fn revert_toward(&self, initial: Mass, lambda: f64) -> Mass {
        self.scale(1.0 - lambda) + initial.scale(lambda)
    }
}

impl Add for Mass {
    type Output = Mass;
    #[inline]
    fn add(self, rhs: Mass) -> Mass {
        Mass { weight: self.weight + rhs.weight, value: self.value + rhs.value }
    }
}

impl AddAssign for Mass {
    #[inline]
    fn add_assign(&mut self, rhs: Mass) {
        self.weight += rhs.weight;
        self.value += rhs.value;
    }
}

impl Sub for Mass {
    type Output = Mass;
    #[inline]
    fn sub(self, rhs: Mass) -> Mass {
        Mass { weight: self.weight - rhs.weight, value: self.value - rhs.value }
    }
}

impl Mul<f64> for Mass {
    type Output = Mass;
    #[inline]
    fn mul(self, rhs: f64) -> Mass {
        self.scale(rhs)
    }
}

/// Wire size of a mass message: two IEEE-754 doubles.
pub const MASS_WIRE_BYTES: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_mass_estimates_its_value() {
        assert_eq!(Mass::averaging(42.0).estimate(), Some(42.0));
    }

    #[test]
    fn zero_weight_has_no_estimate() {
        assert_eq!(Mass::new(0.0, 5.0).estimate(), None);
        assert_eq!(Mass::ZERO.estimate(), None);
    }

    #[test]
    fn halves_sum_back_to_whole() {
        let m = Mass::new(1.0, 37.5);
        let h = m.half();
        assert_eq!(h + h, m);
    }

    #[test]
    fn parcels_conserve_mass() {
        let m = Mass::new(1.0, 99.0);
        for n in [1u32, 2, 4, 7] {
            let p = m.parcel(n);
            let mut total = Mass::ZERO;
            for _ in 0..n {
                total += p;
            }
            assert!((total.weight - m.weight).abs() < 1e-12);
            assert!((total.value - m.value).abs() < 1e-12);
        }
    }

    #[test]
    fn revert_is_identity_at_lambda_zero() {
        let m = Mass::new(0.7, 12.0);
        let init = Mass::averaging(50.0);
        assert_eq!(m.revert_toward(init, 0.0), m);
    }

    #[test]
    fn revert_is_reset_at_lambda_one() {
        let m = Mass::new(0.7, 12.0);
        let init = Mass::averaging(50.0);
        assert_eq!(m.revert_toward(init, 1.0), init);
    }

    #[test]
    fn revert_conserves_systemwide_mass_when_total_equals_initial_total() {
        // §III's conservation argument: Σ revert(v_i) = Σ v_i as long as the
        // current total equals the initial total. Model three hosts.
        let initials = [Mass::averaging(10.0), Mass::averaging(50.0), Mass::averaging(90.0)];
        // Any redistribution of the same total (e.g. after exchanges):
        let current = [Mass::new(1.5, 80.0), Mass::new(0.5, 40.0), Mass::new(1.0, 30.0)];
        let total_before: Mass = current.iter().copied().fold(Mass::ZERO, Mass::add);
        let lambda = 0.25;
        let total_after: Mass = current
            .iter()
            .zip(initials.iter())
            .map(|(c, i)| c.revert_toward(*i, lambda))
            .fold(Mass::ZERO, Mass::add);
        assert!((total_before.weight - total_after.weight).abs() < 1e-12);
        assert!((total_before.value - total_after.value).abs() < 1e-12);
    }

    #[test]
    fn summing_masses_estimate_the_sum() {
        let hosts =
            [Mass::summing(5.0, true), Mass::summing(10.0, false), Mass::summing(85.0, false)];
        let total: Mass = hosts.iter().copied().fold(Mass::ZERO, Mass::add);
        assert_eq!(total.estimate(), Some(100.0));
    }
}
