//! Error types for protocol configuration.

use std::fmt;

/// Validation errors raised when constructing protocols from configs.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The reversion constant λ must lie in `[0, 1]`.
    InvalidLambda(f64),
    /// Parcel count must be at least 1.
    InvalidParcels(u32),
    /// Estimate window must be at least 1 round.
    InvalidWindow(usize),
    /// Sketch bin count must be a power of two ≥ 1.
    InvalidBins(u32),
    /// Sketch register width must be in `1..=63`.
    InvalidWidth(u8),
    /// Epoch length must be at least 1 round.
    InvalidEpochLength(u64),
    /// A drift model's parameters are out of range (probabilities must be
    /// in `[0, 1]`, skew rates finite and non-negative).
    InvalidDrift,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidLambda(l) => {
                write!(f, "reversion constant lambda must be in [0, 1], got {l}")
            }
            Self::InvalidParcels(n) => write!(f, "parcel count must be >= 1, got {n}"),
            Self::InvalidWindow(t) => write!(f, "estimate window must be >= 1 round, got {t}"),
            Self::InvalidBins(m) => {
                write!(f, "sketch bin count must be a power of two >= 1, got {m}")
            }
            Self::InvalidWidth(l) => write!(f, "sketch register width must be in 1..=63, got {l}"),
            Self::InvalidEpochLength(e) => write!(f, "epoch length must be >= 1 round, got {e}"),
            Self::InvalidDrift => write!(
                f,
                "drift model parameters out of range (probabilities in [0, 1], rates finite >= 0)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msg = ProtocolError::InvalidLambda(1.5).to_string();
        assert!(msg.contains("lambda") && msg.contains("1.5"));
        let msg = ProtocolError::InvalidBins(7).to_string();
        assert!(msg.contains("power of two") && msg.contains('7'));
    }
}
