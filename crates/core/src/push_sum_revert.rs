//! **Push-Sum-Revert** (paper §III, Fig. 3): the paper's first dynamic
//! protocol.
//!
//! Push-Sum's correctness rests on conservation of mass, so a silent host
//! failure permanently corrupts the estimate — the departed host's mass is
//! gone, and if failures correlate with values (Fig. 10's scenario) the
//! surviving average is biased forever. Push-Sum-Revert injects a
//! *controlled local error*: after every iteration each host decays its
//! mass toward its initial value,
//!
//! ```text
//! w ← λ + (1−λ)·Σŵ        v ← λ·v₀ + (1−λ)·Σv̂
//! ```
//!
//! While membership is stable this is still conservative (§III's
//! telescoping argument, tested in [`crate::mass`]); after failures it
//! steadily re-injects the *surviving* hosts' initial masses, so the
//! network re-converges to the new true average. λ trades convergence
//! speed against steady-state error (Fig. 10a).
//!
//! Both execution styles are provided:
//! * message-passing push exactly as Fig. 3,
//! * atomic push/pull ([`PairwiseProtocol`]): mass equalization followed by
//!   a local revert step in `end_round` — the decomposition "Push-Sum ∘
//!   Revert" the paper uses in its conservation proof. Figs. 8 and 10 use
//!   this style.
//!
//! ```
//! use dynagg_core::protocol::{Estimator, PairwiseProtocol};
//! use dynagg_core::push_sum_revert::PushSumRevert;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Push-Sum ∘ Revert (§III): equalize, then decay toward the anchor.
//! let mut rng = SmallRng::seed_from_u64(1);
//! let mut a = PushSumRevert::new(10.0, 0.1);
//! let mut b = PushSumRevert::new(50.0, 0.1);
//! PushSumRevert::exchange(&mut a, &mut b, &mut rng);
//! PairwiseProtocol::end_round(&mut a, 0);
//! // Equalized to 30, then reverted: 0.9·30 + 0.1·10 = 28.
//! assert!((a.estimate().unwrap() - 28.0).abs() < 1e-12);
//! ```
//!
//! [`PairwiseProtocol`]: crate::protocol::PairwiseProtocol

use crate::config::RevertConfig;
use crate::error::ProtocolError;
use crate::mass::{Mass, MASS_WIRE_BYTES};
use crate::protocol::{Estimator, NodeId, PairwiseProtocol, PushProtocol, RoundCtx};
use rand::rngs::SmallRng;

/// One host's Push-Sum-Revert state.
#[derive(Debug, Clone, PartialEq)]
pub struct PushSumRevert {
    lambda: f64,
    initial: Mass,
    mass: Mass,
    inbox: Mass,
    last_estimate: Option<f64>,
}

impl PushSumRevert {
    /// An averaging host holding `value`, with reversion constant `lambda`.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `[0, 1]`; use [`PushSumRevert::try_new`]
    /// for fallible construction.
    pub fn new(value: f64, lambda: f64) -> Self {
        Self::try_new(value, lambda).expect("invalid Push-Sum-Revert parameters")
    }

    /// Fallible constructor.
    pub fn try_new(value: f64, lambda: f64) -> Result<Self, ProtocolError> {
        let cfg = RevertConfig::new(lambda)?;
        let initial = Mass::averaging(value);
        Ok(Self {
            lambda: cfg.lambda,
            initial,
            mass: initial,
            inbox: Mass::ZERO,
            last_estimate: initial.estimate(),
        })
    }

    /// Construct from a validated config.
    pub fn from_config(value: f64, cfg: RevertConfig) -> Self {
        let initial = Mass::averaging(value);
        Self {
            lambda: cfg.lambda,
            initial,
            mass: initial,
            inbox: Mass::ZERO,
            last_estimate: initial.estimate(),
        }
    }

    /// The reversion constant λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The host's initial (anchor) mass.
    pub fn initial(&self) -> Mass {
        self.initial
    }

    /// Current mass.
    pub fn mass(&self) -> Mass {
        self.mass
    }

    /// Update the host's local value in place (the device's sensor reading
    /// changed). The reversion term immediately starts pulling the network
    /// toward the new value — this is what makes the protocol a *running*
    /// aggregate rather than a one-shot query.
    pub fn set_value(&mut self, value: f64) {
        self.initial = Mass::averaging(value);
    }

    /// The outgoing total for this round: `(1−λ)·mass + λ·initial`
    /// (the numerator of Fig. 3 step 2).
    fn reverted(&self) -> Mass {
        self.mass.revert_toward(self.initial, self.lambda)
    }

    /// Start a push round *without* peer selection: retain the self half
    /// in the inbox and return the outgoing half. Composite protocols
    /// ([`crate::moments`], [`crate::invert_average`]) use this to drive
    /// several instances against one peer they sample themselves.
    pub fn emit_half(&mut self) -> Mass {
        let half = self.reverted().half();
        self.inbox = half;
        half
    }

    /// Return an outgoing half that was never sent (the host turned out to
    /// be isolated this round): the mass stays home.
    pub fn absorb_unsent(&mut self, m: Mass) {
        self.inbox += m;
    }

    /// Absorb a received mass share (composite-protocol delivery path;
    /// equivalent to `on_message`).
    pub fn absorb(&mut self, m: Mass) {
        self.inbox += m;
    }

    /// Conclude a push round started with [`PushSumRevert::emit_half`].
    pub fn conclude_round(&mut self) {
        self.mass = self.inbox;
        self.inbox = Mass::ZERO;
        if let Some(e) = self.mass.estimate() {
            self.last_estimate = Some(e);
        }
    }
}

impl Estimator for PushSumRevert {
    fn estimate(&self) -> Option<f64> {
        self.mass.estimate().or(self.last_estimate)
    }

    fn audit_mass(&self) -> Option<Mass> {
        // `mass` is replaced only at `end_round`, so between rounds it
        // still accounts for shares currently in flight — summing it over
        // hosts is conservation-exact at any sampling instant.
        Some(self.mass)
    }
}

impl PushProtocol for PushSumRevert {
    type Message = Mass;

    fn begin_round(&mut self, ctx: &mut RoundCtx<'_>, out: &mut Vec<(NodeId, Mass)>) {
        let half = self.reverted().half();
        self.inbox = half;
        if let Some(peer) = ctx.sample_peer() {
            out.push((peer, half));
        } else {
            self.inbox += half;
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &Mass, _ctx: &mut RoundCtx<'_>) -> Option<Mass> {
        self.inbox += *msg;
        None
    }

    fn end_round(&mut self, _ctx: &mut RoundCtx<'_>) {
        self.mass = self.inbox;
        self.inbox = Mass::ZERO;
        if let Some(e) = self.mass.estimate() {
            self.last_estimate = Some(e);
        }
    }

    fn message_bytes(_msg: &Mass) -> usize {
        MASS_WIRE_BYTES
    }
}

impl PairwiseProtocol for PushSumRevert {
    fn exchange(initiator: &mut Self, responder: &mut Self, _rng: &mut SmallRng) {
        let avg = (initiator.mass + responder.mass).half();
        initiator.mass = avg;
        responder.mass = avg;
    }

    fn end_round(&mut self, _round: u64) {
        // The Revert step of the "Push-Sum ∘ Revert" decomposition.
        self.mass = self.reverted();
        if let Some(e) = self.mass.estimate() {
            self.last_estimate = Some(e);
        }
    }

    fn exchange_bytes(&self) -> usize {
        2 * MASS_WIRE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// Run pairwise push/pull rounds over all nodes; returns final states.
    fn run_pairwise(mut nodes: Vec<PushSumRevert>, rounds: u64, seed: u64) -> Vec<PushSumRevert> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = nodes.len();
        for round in 0..rounds {
            for i in 0..n {
                let j = loop {
                    let j = rng.gen_range(0..n);
                    if j != i {
                        break j;
                    }
                };
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (a, b) = nodes.split_at_mut(hi);
                PushSumRevert::exchange(&mut a[lo], &mut b[0], &mut rng);
            }
            for node in nodes.iter_mut() {
                PairwiseProtocol::end_round(node, round);
            }
        }
        nodes
    }

    fn nodes_with_values(values: &[f64], lambda: f64) -> Vec<PushSumRevert> {
        values.iter().map(|&v| PushSumRevert::new(v, lambda)).collect()
    }

    #[test]
    fn lambda_zero_behaves_like_push_sum() {
        let values = [10.0, 30.0, 50.0, 70.0];
        let nodes = run_pairwise(nodes_with_values(&values, 0.0), 30, 5);
        for n in &nodes {
            assert!((n.estimate().unwrap() - 40.0).abs() < 0.5);
        }
    }

    #[test]
    fn converges_with_reversion_active() {
        let values = [0.0, 25.0, 50.0, 75.0, 100.0];
        let nodes = run_pairwise(nodes_with_values(&values, 0.01), 50, 6);
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!((e - 50.0).abs() < 5.0, "estimate {e} too far from 50");
        }
    }

    #[test]
    fn conservation_of_mass_under_stable_membership() {
        // §III: with no churn, the revert step conserves total mass.
        let values = [10.0, 20.0, 60.0, 110.0];
        let total_v: f64 = values.iter().sum();
        let nodes = run_pairwise(nodes_with_values(&values, 0.1), 25, 7);
        let total: Mass = nodes.iter().map(|n| n.mass()).fold(Mass::ZERO, |a, b| a + b);
        assert!((total.weight - 4.0).abs() < 1e-6, "weight drifted: {}", total.weight);
        assert!((total.value - total_v).abs() < 1e-6, "value drifted: {}", total.value);
    }

    #[test]
    fn recovers_from_correlated_failure() {
        // 8 hosts; fail the high-valued half after convergence. Static
        // push-sum (λ=0) keeps estimating ~50; reversion pulls survivors to
        // their own average of 25.
        let values = [10.0, 20.0, 30.0, 40.0, 60.0, 70.0, 80.0, 90.0];
        let lambda = 0.1;
        let mut nodes = nodes_with_values(&values, lambda);
        let mut rng = SmallRng::seed_from_u64(8);
        // converge
        for round in 0..20u64 {
            for i in 0..nodes.len() {
                let j = (i + 1 + rng.gen_range(0..nodes.len() - 1)) % nodes.len();
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (a, b) = nodes.split_at_mut(hi);
                PushSumRevert::exchange(&mut a[lo], &mut b[0], &mut rng);
            }
            for n in nodes.iter_mut() {
                PairwiseProtocol::end_round(n, round);
            }
        }
        // silently fail the top half (values 60..90)
        nodes.truncate(4);
        let survivors_avg = 25.0;
        for round in 20..120u64 {
            for i in 0..nodes.len() {
                let j = (i + 1 + rng.gen_range(0..nodes.len() - 1)) % nodes.len();
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (a, b) = nodes.split_at_mut(hi);
                PushSumRevert::exchange(&mut a[lo], &mut b[0], &mut rng);
            }
            for n in nodes.iter_mut() {
                PairwiseProtocol::end_round(n, round);
            }
        }
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!(
                (e - survivors_avg).abs() < 5.0,
                "post-failure estimate {e} should approach {survivors_avg}"
            );
        }
    }

    #[test]
    fn static_protocol_stays_biased_after_correlated_failure() {
        // The contrast case: λ = 0 never heals. (This is the paper's core
        // motivation, so pin it as a regression test.)
        let values = [10.0, 20.0, 30.0, 40.0, 60.0, 70.0, 80.0, 90.0];
        let mut nodes = nodes_with_values(&values, 0.0);
        let mut rng = SmallRng::seed_from_u64(9);
        for round in 0..20u64 {
            for i in 0..nodes.len() {
                let j = (i + 1 + rng.gen_range(0..nodes.len() - 1)) % nodes.len();
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (a, b) = nodes.split_at_mut(hi);
                PushSumRevert::exchange(&mut a[lo], &mut b[0], &mut rng);
            }
            for n in nodes.iter_mut() {
                PairwiseProtocol::end_round(n, round);
            }
        }
        nodes.truncate(4);
        for round in 20..80u64 {
            for i in 0..nodes.len() {
                let j = (i + 1 + rng.gen_range(0..nodes.len() - 1)) % nodes.len();
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (a, b) = nodes.split_at_mut(hi);
                PushSumRevert::exchange(&mut a[lo], &mut b[0], &mut rng);
            }
            for n in nodes.iter_mut() {
                PairwiseProtocol::end_round(n, round);
            }
        }
        for n in &nodes {
            let e = n.estimate().unwrap();
            assert!(
                (e - 50.0).abs() < 2.0,
                "static estimate {e} should remain near the pre-failure average 50"
            );
        }
    }

    #[test]
    fn higher_lambda_converges_faster_but_noisier() {
        // Qualitative Fig. 10a shape on a small network: after a correlated
        // failure, λ=0.5 must be closer to the new truth than λ=0.001 at
        // round 10 post-failure.
        let values: Vec<f64> = (0..16).map(|i| f64::from(i) * 10.0).collect();
        let run = |lambda: f64| -> f64 {
            let mut nodes = nodes_with_values(&values, lambda);
            let mut rng = SmallRng::seed_from_u64(10);
            for round in 0..20u64 {
                for i in 0..nodes.len() {
                    let j = (i + 1 + rng.gen_range(0..nodes.len() - 1)) % nodes.len();
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    let (a, b) = nodes.split_at_mut(hi);
                    PushSumRevert::exchange(&mut a[lo], &mut b[0], &mut rng);
                }
                for n in nodes.iter_mut() {
                    PairwiseProtocol::end_round(n, round);
                }
            }
            nodes.truncate(8); // fail high half; survivor avg = 35
            for round in 20..30u64 {
                for i in 0..nodes.len() {
                    let j = (i + 1 + rng.gen_range(0..nodes.len() - 1)) % nodes.len();
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    let (a, b) = nodes.split_at_mut(hi);
                    PushSumRevert::exchange(&mut a[lo], &mut b[0], &mut rng);
                }
                for n in nodes.iter_mut() {
                    PairwiseProtocol::end_round(n, round);
                }
            }
            let truth = 35.0;
            let mse: f64 =
                nodes.iter().map(|n| (n.estimate().unwrap() - truth).powi(2)).sum::<f64>()
                    / nodes.len() as f64;
            mse.sqrt()
        };
        let fast = run(0.5);
        let slow = run(0.001);
        assert!(
            fast < slow,
            "10 rounds after failure λ=0.5 (err {fast:.2}) should beat λ=0.001 (err {slow:.2})"
        );
    }

    #[test]
    fn set_value_moves_the_anchor() {
        let mut n = PushSumRevert::new(10.0, 0.5);
        n.set_value(90.0);
        // With λ=0.5 and no gossip, repeated end_round pulls mass halfway
        // to the new anchor each round.
        for round in 0..20 {
            PairwiseProtocol::end_round(&mut n, round);
        }
        assert!((n.estimate().unwrap() - 90.0).abs() < 1e-3);
    }

    #[test]
    fn invalid_lambda_rejected() {
        assert!(PushSumRevert::try_new(1.0, -0.5).is_err());
        assert!(PushSumRevert::try_new(1.0, 2.0).is_err());
    }
}
