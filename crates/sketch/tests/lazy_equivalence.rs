//! Differential property tests: lazy [`AgeMatrix`] ≡ eager [`RefAgeMatrix`].
//!
//! Every golden digest in the repo pins behavior of the eager `u8`
//! age-counter matrix; the lazy birth-stamp representation replacing it
//! is only correct if no public observation can tell the two apart. In
//! the style of the wheel-vs-heap queue suite (`node/tests/
//! queue_properties.rs`), these tests drive both implementations through
//! arbitrary interleaved programs — claims, ticks (including past the
//! saturation boundary), releases, min-merges between pairs with
//! *different* tick counts (exercising the clock-translation paths),
//! wire load/dump round-trips — and assert cell-exact ages, bit-exact
//! estimates, identical cutoff admits, and byte-identical codec output
//! at every checkpoint.

use dynagg_sketch::age::{AgeMatrix, INF_AGE, MAX_FINITE_AGE};
use dynagg_sketch::codec;
use dynagg_sketch::cutoff::Cutoff;
use dynagg_sketch::hash::SplitMix64;
use dynagg_sketch::reference::RefAgeMatrix;
use proptest::prelude::*;
use proptest::strategy::Just;

const M: u32 = 8;
const L: u8 = 12;

/// One lazy/eager pair driven through identical mutations.
struct Pair {
    lazy: AgeMatrix,
    eager: RefAgeMatrix,
}

impl Pair {
    fn new() -> Self {
        Self { lazy: AgeMatrix::new(M, L), eager: RefAgeMatrix::new(M, L) }
    }

    /// Assert every public observation agrees, under several cutoffs
    /// including degenerate ones.
    fn check(&self) {
        for bin in 0..M {
            for k in 0..=L {
                assert_eq!(
                    self.lazy.age(bin, k),
                    self.eager.age(bin, k),
                    "age diverged at ({bin}, {k})"
                );
            }
        }
        assert_eq!(self.lazy.owned_cells(), self.eager.owned_cells());
        let cutoffs = [
            Cutoff::paper_uniform(),
            Cutoff::slow(),
            Cutoff::paper_uniform().scaled(0.25),
            Cutoff::Infinite,
            // Degenerate thresholds: admit-nothing and admit-everything.
            Cutoff::Linear { base: -3.0, slope: 0.0 },
            Cutoff::Linear { base: 1000.0, slope: 5.0 },
            // Thresholds straddling the saturation clamp.
            Cutoff::Linear { base: f64::from(MAX_FINITE_AGE), slope: 0.0 },
            Cutoff::Linear { base: f64::from(MAX_FINITE_AGE) - 0.5, slope: 0.0 },
        ];
        for cutoff in &cutoffs {
            // f64 bit-exactness: both paths must feed the estimator the
            // identical mean R (an integer sum over m).
            assert_eq!(
                self.lazy.mean_r(cutoff).to_bits(),
                self.eager.mean_r(cutoff).to_bits(),
                "mean_r diverged under {cutoff:?}"
            );
            assert_eq!(
                self.lazy.estimate(cutoff).to_bits(),
                self.eager.estimate(cutoff).to_bits(),
                "estimate diverged under {cutoff:?}"
            );
            assert_eq!(
                self.lazy.bit_view(cutoff),
                self.eager.bit_view(cutoff),
                "bit view diverged under {cutoff:?}"
            );
        }
        // Wire bytes: the memoizing codec on the lazy matrix must produce
        // exactly what the reference's independent encoder produces.
        let lazy_bytes = codec::encode_ages(&self.lazy);
        assert_eq!(lazy_bytes, self.eager.encode(), "encoded payloads diverged");
        assert_eq!(codec::encoded_len_ages(&self.lazy), lazy_bytes.len());
        // And decoding the lazy payload must reproduce the eager cells.
        let decoded = codec::decode_ages(&lazy_bytes).expect("self-encoded payload decodes");
        for bin in 0..M {
            for k in 0..=L {
                assert_eq!(decoded.age(bin, k), self.eager.age(bin, k));
            }
        }
    }
}

/// Apply one generated op to both representations of a pair — or merge
/// between the two pairs, in both clock directions.
fn apply(a: &mut Pair, b: &mut Pair, op: &Op) {
    match *op {
        Op::Claim { bin, k } => {
            a.lazy.claim_cell(bin % M, k % (L + 1));
            a.eager.claim_cell(bin % M, k % (L + 1));
        }
        Op::ClaimId { id } => {
            let h = SplitMix64::new(17);
            a.lazy.claim_id(&h, id);
            a.eager.claim_id(&h, id);
        }
        Op::ClaimValue { id, value } => {
            let h = SplitMix64::new(17);
            a.lazy.claim_value(&h, id, u64::from(value));
            a.eager.claim_value(&h, id, u64::from(value));
        }
        Op::Release => {
            a.lazy.release_all();
            a.eager.release_all();
        }
        Op::Tick { times } => {
            // Up to ~600 ticks: crosses the MAX_FINITE_AGE saturation
            // boundary mid-program, with owned cells still pinned.
            for _ in 0..times {
                a.lazy.tick();
                a.eager.tick();
            }
        }
        Op::MergeFromOther => {
            a.lazy.merge_min(&b.lazy);
            a.eager.merge_min(&b.eager);
        }
        Op::MergeIntoOther => {
            b.lazy.merge_min(&a.lazy);
            b.eager.merge_min(&a.eager);
        }
        Op::MergeDecoded => {
            // Merge through the wire: exercises load_ages' clock reset
            // and the decoded-view clock-translation merge path.
            let decoded = codec::decode_ages(&codec::encode_ages(&b.lazy)).unwrap();
            a.lazy.merge_min(&decoded);
            let mut cells = Vec::new();
            b.lazy.dump_ages(&mut cells);
            let mut eager_decoded = RefAgeMatrix::new(M, L);
            eager_decoded.load_ages(&cells);
            a.eager.merge_min(&eager_decoded);
        }
        Op::LoadRoundtrip => {
            // Dump a's cells and load them back into itself: ownership
            // clears and the clock rebases to base.
            let mut cells = Vec::new();
            a.lazy.dump_ages(&mut cells);
            a.lazy.load_ages(&cells);
            a.eager.load_ages(&cells);
        }
        Op::Swap => {}
    }
}

#[derive(Debug, Clone)]
enum Op {
    Claim { bin: u32, k: u8 },
    ClaimId { id: u64 },
    ClaimValue { id: u64, value: u8 },
    Release,
    Tick { times: u16 },
    MergeFromOther,
    MergeIntoOther,
    MergeDecoded,
    LoadRoundtrip,
    Swap,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u32>(), any::<u8>()).prop_map(|(bin, k)| Op::Claim { bin, k }),
        any::<u64>().prop_map(|id| Op::ClaimId { id }),
        (any::<u64>(), 0u8..40).prop_map(|(id, value)| Op::ClaimValue { id, value }),
        Just(Op::Release),
        // Mostly short ticks, with occasional saturation-scale bursts so
        // programs cross the 254 boundary (the shim's oneof is uniform,
        // so the short arm is repeated to weight it).
        (0u16..12).prop_map(|times| Op::Tick { times }),
        (0u16..12).prop_map(|times| Op::Tick { times }),
        (0u16..12).prop_map(|times| Op::Tick { times }),
        (200u16..600).prop_map(|times| Op::Tick { times }),
        Just(Op::MergeFromOther),
        Just(Op::MergeIntoOther),
        Just(Op::MergeDecoded),
        Just(Op::LoadRoundtrip),
        Just(Op::Swap),
    ]
}

proptest! {
    /// Arbitrary interleaved programs over two lazy/eager pairs: after
    /// every op, all public observations must agree. `Swap` ops alternate
    /// which pair receives subsequent mutations, so both accumulate
    /// different tick counts and merges run misaligned in both directions.
    #[test]
    fn lazy_matches_eager_on_arbitrary_programs(
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mut a = Pair::new();
        let mut b = Pair::new();
        let mut flipped = false;
        for op in &ops {
            if matches!(op, Op::Swap) {
                flipped = !flipped;
                continue;
            }
            if flipped {
                apply(&mut b, &mut a, op);
            } else {
                apply(&mut a, &mut b, op);
            }
        }
        a.check();
        b.check();
    }

    /// Merge-heavy programs with per-step checking: divergence is caught
    /// at the op that introduced it, not at program end.
    #[test]
    fn lazy_matches_eager_stepwise_under_merges(
        ops in proptest::collection::vec(
            prop_oneof![
                (any::<u32>(), any::<u8>()).prop_map(|(bin, k)| Op::Claim { bin, k }),
                Just(Op::Release),
                (0u16..30).prop_map(|times| Op::Tick { times }),
                Just(Op::MergeFromOther),
                Just(Op::MergeDecoded),
            ],
            0..25,
        ),
        seed_b in proptest::collection::vec(any::<u64>(), 0..20),
        ticks_b in 0u16..300,
    ) {
        let mut a = Pair::new();
        let mut b = Pair::new();
        let h = SplitMix64::new(17);
        for id in seed_b {
            b.lazy.claim_id(&h, id);
            b.eager.claim_id(&h, id);
        }
        for _ in 0..ticks_b {
            b.lazy.tick();
            b.eager.tick();
        }
        for op in &ops {
            apply(&mut a, &mut b, op);
            a.check();
        }
        b.check();
    }
}

/// The clock-rebase boundary cannot be reached by short proptest
/// programs, so cross it deliberately: ~70 000 ticks force a rebase (the
/// lazy clock rebases every ~65 000), with an owned pinned cell, a
/// released finite cell that saturates, and ∞ cells. The eager reference
/// pays the full O(cells) pass per tick; the matrices stay tiny so this
/// runs in milliseconds.
#[test]
fn rebase_crossing_matches_eager_reference() {
    let mut p = Pair::new();
    p.lazy.claim_cell(0, 0);
    p.eager.claim_cell(0, 0);
    p.lazy.claim_cell(1, 1);
    p.eager.claim_cell(1, 1);
    for i in 0..70_000u32 {
        if i == 10 {
            // Release (1,1) early so it saturates long before the rebase.
            let mut cells = Vec::new();
            p.lazy.dump_ages(&mut cells);
            // Re-own only (0,0): release everything, then re-claim.
            p.lazy.release_all();
            p.eager.release_all();
            p.lazy.claim_cell(0, 0);
            p.eager.claim_cell(0, 0);
        }
        p.lazy.tick();
        p.eager.tick();
        if i % 9_999 == 0 {
            p.check();
        }
    }
    p.check();
    // A late merge partner still merges exactly across the rebase gap.
    let mut q = Pair::new();
    q.lazy.claim_cell(1, 1);
    q.eager.claim_cell(1, 1);
    q.lazy.tick();
    q.eager.tick();
    p.lazy.merge_min(&q.lazy);
    p.eager.merge_min(&q.eager);
    p.check();
    assert_eq!(p.lazy.age(1, 1), 0, "merge must revive the saturated cell from q's fresh claim");
    assert_eq!(p.lazy.age(2, 2), INF_AGE);
}
