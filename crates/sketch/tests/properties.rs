//! Property-based tests for the sketch substrate.
//!
//! These pin down the algebraic laws the gossip protocols rely on:
//! OR-merge and min-merge must both be commutative, associative, and
//! idempotent semilattice joins, and estimates must be monotone under
//! union. A violation of any law would silently corrupt a gossip run
//! (merges happen in arbitrary orders along arbitrary paths).

use dynagg_sketch::age::{AgeMatrix, INF_AGE};
use dynagg_sketch::codec;
use dynagg_sketch::cutoff::Cutoff;
use dynagg_sketch::hash::{Hash64, SplitMix64, XxLike64};
use dynagg_sketch::pcsa::Pcsa;
use dynagg_sketch::rho::{bin_and_rho, rho};
use proptest::prelude::*;

const M: u32 = 16;
const L: u8 = 24;

fn pcsa_from_ids(ids: &[u64]) -> Pcsa {
    let h = SplitMix64::new(99);
    let mut p = Pcsa::new(M, L);
    for &id in ids {
        p.insert(&h, id);
    }
    p
}

fn age_from_ids(ids: &[u64], ticks: u8) -> AgeMatrix {
    let h = SplitMix64::new(99);
    let mut m = AgeMatrix::new(M, L);
    for &id in ids {
        m.claim_id(&h, id);
    }
    m.release_all();
    for _ in 0..ticks {
        m.tick();
    }
    m
}

proptest! {
    #[test]
    fn rho_never_exceeds_cap(hash: u64, l in 1u8..=64) {
        prop_assert!(rho(hash, l) <= l);
    }

    #[test]
    fn bin_and_rho_in_range(hash: u64) {
        let (bin, k) = bin_and_rho(hash, M, L);
        prop_assert!(bin < M);
        prop_assert!(k <= L);
    }

    #[test]
    fn hashers_are_pure(seed: u64, x: u64) {
        prop_assert_eq!(SplitMix64::new(seed).hash_u64(x), SplitMix64::new(seed).hash_u64(x));
        prop_assert_eq!(XxLike64::new(seed).hash_u64(x), XxLike64::new(seed).hash_u64(x));
    }

    #[test]
    fn or_merge_commutes(a in proptest::collection::vec(any::<u64>(), 0..50),
                         b in proptest::collection::vec(any::<u64>(), 0..50)) {
        let (pa, pb) = (pcsa_from_ids(&a), pcsa_from_ids(&b));
        let mut ab = pa.clone();
        ab.merge(&pb);
        let mut ba = pb.clone();
        ba.merge(&pa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn or_merge_associates(a in proptest::collection::vec(any::<u64>(), 0..30),
                           b in proptest::collection::vec(any::<u64>(), 0..30),
                           c in proptest::collection::vec(any::<u64>(), 0..30)) {
        let (pa, pb, pc) = (pcsa_from_ids(&a), pcsa_from_ids(&b), pcsa_from_ids(&c));
        let mut left = pa.clone();
        left.merge(&pb);
        left.merge(&pc);
        let mut bc = pb.clone();
        bc.merge(&pc);
        let mut right = pa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn or_merge_idempotent(a in proptest::collection::vec(any::<u64>(), 0..50)) {
        let pa = pcsa_from_ids(&a);
        let mut twice = pa.clone();
        twice.merge(&pa);
        prop_assert_eq!(twice, pa);
    }

    #[test]
    fn merge_equals_union_of_id_sets(a in proptest::collection::vec(any::<u64>(), 0..40),
                                     b in proptest::collection::vec(any::<u64>(), 0..40)) {
        let mut merged = pcsa_from_ids(&a);
        merged.merge(&pcsa_from_ids(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, pcsa_from_ids(&union));
    }

    #[test]
    fn estimate_monotone_under_union(a in proptest::collection::vec(any::<u64>(), 1..40),
                                     b in proptest::collection::vec(any::<u64>(), 1..40)) {
        let pa = pcsa_from_ids(&a);
        let mut merged = pa.clone();
        merged.merge(&pcsa_from_ids(&b));
        prop_assert!(merged.estimate() >= pa.estimate() - 1e-9);
    }

    #[test]
    fn min_merge_commutes(a in proptest::collection::vec(any::<u64>(), 0..30),
                          b in proptest::collection::vec(any::<u64>(), 0..30),
                          ta in 0u8..20, tb in 0u8..20) {
        let (ma, mb) = (age_from_ids(&a, ta), age_from_ids(&b, tb));
        let mut ab = ma.clone();
        ab.merge_min(&mb);
        let mut ba = mb.clone();
        ba.merge_min(&ma);
        // Own-cell lists differ (both released, so both empty) — compare ages.
        for bin in 0..M {
            for k in 0..=L {
                prop_assert_eq!(ab.age(bin, k), ba.age(bin, k));
            }
        }
    }

    #[test]
    fn min_merge_associates(a in proptest::collection::vec(any::<u64>(), 0..20),
                            b in proptest::collection::vec(any::<u64>(), 0..20),
                            c in proptest::collection::vec(any::<u64>(), 0..20)) {
        let (ma, mb, mc) = (age_from_ids(&a, 3), age_from_ids(&b, 7), age_from_ids(&c, 11));
        let mut left = ma.clone();
        left.merge_min(&mb);
        left.merge_min(&mc);
        let mut bc = mb.clone();
        bc.merge_min(&mc);
        let mut right = ma.clone();
        right.merge_min(&bc);
        for bin in 0..M {
            for k in 0..=L {
                prop_assert_eq!(left.age(bin, k), right.age(bin, k));
            }
        }
    }

    #[test]
    fn min_merge_idempotent(a in proptest::collection::vec(any::<u64>(), 0..30), t in 0u8..20) {
        let ma = age_from_ids(&a, t);
        let mut twice = ma.clone();
        twice.merge_min(&ma);
        for bin in 0..M {
            for k in 0..=L {
                prop_assert_eq!(twice.age(bin, k), ma.age(bin, k));
            }
        }
    }

    #[test]
    fn merge_never_increases_any_age(a in proptest::collection::vec(any::<u64>(), 0..30),
                                     b in proptest::collection::vec(any::<u64>(), 0..30)) {
        let (ma, mb) = (age_from_ids(&a, 5), age_from_ids(&b, 2));
        let mut merged = ma.clone();
        merged.merge_min(&mb);
        for bin in 0..M {
            for k in 0..=L {
                prop_assert!(merged.age(bin, k) <= ma.age(bin, k));
                prop_assert!(merged.age(bin, k) <= mb.age(bin, k));
            }
        }
    }

    #[test]
    fn bit_view_live_set_shrinks_with_age(a in proptest::collection::vec(any::<u64>(), 1..30)) {
        // As a matrix with released sources ages, the set of live bits under
        // a finite cutoff can only shrink (bits expire, never revive).
        let cutoff = Cutoff::paper_uniform();
        let mut m = age_from_ids(&a, 0);
        let mut prev_live: u32 = m
            .bit_view(&cutoff)
            .bins()
            .iter()
            .map(|b| b.bits().count_ones())
            .sum();
        for _ in 0..30 {
            m.tick();
            let live: u32 = m
                .bit_view(&cutoff)
                .bins()
                .iter()
                .map(|b| b.bits().count_ones())
                .sum();
            prop_assert!(live <= prev_live);
            prev_live = live;
        }
        prop_assert_eq!(prev_live, 0, "all bits must eventually expire once sources left");
    }

    #[test]
    fn infinite_cutoff_view_is_monotone(a in proptest::collection::vec(any::<u64>(), 1..30),
                                        t in 0u8..40) {
        // With Cutoff::Infinite, the bit view matches the static sketch and
        // never loses bits regardless of age.
        let m = age_from_ids(&a, t);
        let bits = m.bit_view(&Cutoff::Infinite);
        prop_assert_eq!(bits, pcsa_from_ids(&a));
    }

    #[test]
    fn ages_are_finite_or_inf_sentinel(a in proptest::collection::vec(any::<u64>(), 0..30),
                                       t in 0u8..100) {
        let m = age_from_ids(&a, t);
        for bin in 0..M {
            for k in 0..=L {
                let age = m.age(bin, k);
                // Either the sentinel, or a real age that never exceeds the
                // number of elapsed ticks.
                prop_assert!(age == INF_AGE || age <= t);
            }
        }
    }

    /// Wire codec: age matrices round-trip exactly for any content.
    #[test]
    fn codec_ages_roundtrip(a in proptest::collection::vec(any::<u64>(), 0..50),
                            t in 0u8..60) {
        let m = age_from_ids(&a, t);
        let decoded = codec::decode_ages(&codec::encode_ages(&m)).unwrap();
        for bin in 0..M {
            for k in 0..=L {
                prop_assert_eq!(decoded.age(bin, k), m.age(bin, k));
            }
        }
    }

    /// Wire codec: PCSA sketches round-trip exactly for any content.
    #[test]
    fn codec_pcsa_roundtrip(a in proptest::collection::vec(any::<u64>(), 0..80)) {
        let p = pcsa_from_ids(&a);
        prop_assert_eq!(codec::decode_pcsa(&codec::encode_pcsa(&p)).unwrap(), p);
    }

    /// Min-merging a decoded wire view equals merging the original — the
    /// codec cannot perturb gossip semantics.
    #[test]
    fn codec_merge_transparency(a in proptest::collection::vec(any::<u64>(), 0..30),
                                b in proptest::collection::vec(any::<u64>(), 0..30)) {
        let ma = age_from_ids(&a, 4);
        let mb = age_from_ids(&b, 9);
        let mut direct = ma.clone();
        direct.merge_min(&mb);
        let mut via_wire = ma.clone();
        via_wire.merge_min(&codec::decode_ages(&codec::encode_ages(&mb)).unwrap());
        for bin in 0..M {
            for k in 0..=L {
                prop_assert_eq!(direct.age(bin, k), via_wire.age(bin, k));
            }
        }
    }
}
