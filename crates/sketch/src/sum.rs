//! Sketch-based summation by multiple insertion (Considine et al. 2004,
//! reused by the paper in §IV-B and Fig. 11's dynamic-sum panels).
//!
//! To register a value `v`, a host inserts `v` independent identifiers
//! (derived from `(host, 0..v)`) into the sketch. The sketch then counts
//! *identifiers*, i.e. the network-wide **sum**. Space grows only
//! logarithmically with the summed range, but insertion cost is `O(v)`;
//! [`ScaledSum`] trades a controlled quantization error for an `O(v/scale)`
//! cost, and the paper's Invert-Average protocol (in `dynagg-core`) avoids
//! the multi-insertion entirely.

use crate::hash::Hash64;
use crate::pcsa::Pcsa;

/// Insert `value` independent identifiers for `host_id` into a PCSA sketch.
///
/// Deterministic: the same `(hasher-seed, host_id, value)` always sets the
/// same cells, so re-insertion and sketch merges stay duplicate-insensitive.
pub fn insert_value<H: Hash64>(pcsa: &mut Pcsa, hasher: &H, host_id: u64, value: u64) {
    for j in 0..value {
        let h = hasher.hash_pair(host_id, j);
        let (bin, k) = crate::rho::bin_and_rho(h, pcsa.num_bins(), pcsa.width());
        pcsa.set_cell(bin, k);
    }
}

/// Multi-insertion summation with value quantization.
///
/// Values are divided by `scale` (rounding half-up) before insertion, and
/// estimates are multiplied back. With `scale = 100`, registering
/// `v = 1_250` costs 13 insertions and quantizes to `1_300`; the relative
/// quantization error is at most `scale / (2·v)` per host, usually far
/// below the sketch's own `0.78/√m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScaledSum {
    scale: u64,
}

impl ScaledSum {
    /// A summation helper with the given quantization scale (≥ 1).
    ///
    /// # Panics
    /// Panics if `scale` is zero.
    pub fn new(scale: u64) -> Self {
        assert!(scale >= 1, "scale must be at least 1");
        Self { scale }
    }

    /// Identity scaling: exact multi-insertion.
    pub fn exact() -> Self {
        Self { scale: 1 }
    }

    /// The quantization scale.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Number of identifiers a host with `value` registers.
    pub fn ids_for(&self, value: u64) -> u64 {
        (value + self.scale / 2) / self.scale
    }

    /// Register `value` for `host_id`.
    pub fn insert<H: Hash64>(&self, pcsa: &mut Pcsa, hasher: &H, host_id: u64, value: u64) {
        insert_value(pcsa, hasher, host_id, self.ids_for(value));
    }

    /// Convert a sketch estimate (in identifiers) back into value units.
    pub fn estimate(&self, pcsa: &Pcsa) -> f64 {
        pcsa.estimate() * self.scale as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::expected_error;
    use crate::hash::SplitMix64;

    #[test]
    fn sum_estimate_tracks_total() {
        let h = SplitMix64::new(31);
        let mut p = Pcsa::new(64, 32);
        // 200 hosts each register value 100 -> sum 20_000.
        let mut total = 0u64;
        for host in 0..200u64 {
            insert_value(&mut p, &h, host, 100);
            total += 100;
        }
        let est = p.estimate();
        let rel = (est - total as f64).abs() / total as f64;
        assert!(rel < 3.0 * expected_error(64), "est={est:.0} rel={rel:.3}");
    }

    #[test]
    fn insertion_is_idempotent_and_mergeable() {
        let h = SplitMix64::new(8);
        let mut a = Pcsa::new(16, 24);
        insert_value(&mut a, &h, 7, 500);
        let once = a.clone();
        insert_value(&mut a, &h, 7, 500);
        assert_eq!(a, once, "re-registering the same value must not change the sketch");

        // A second host's sketch merged in equals inserting both locally.
        let mut b = Pcsa::new(16, 24);
        insert_value(&mut b, &h, 9, 300);
        let mut merged = once.clone();
        merged.merge(&b);
        let mut both = Pcsa::new(16, 24);
        insert_value(&mut both, &h, 7, 500);
        insert_value(&mut both, &h, 9, 300);
        assert_eq!(merged, both);
    }

    #[test]
    fn zero_value_inserts_nothing() {
        let h = SplitMix64::new(4);
        let mut p = Pcsa::new(16, 24);
        insert_value(&mut p, &h, 1, 0);
        assert!(p.is_empty());
    }

    #[test]
    fn scaled_sum_quantizes_and_rescales() {
        let s = ScaledSum::new(100);
        assert_eq!(s.ids_for(1_250), 13); // rounds half-up
        assert_eq!(s.ids_for(49), 0);
        assert_eq!(s.ids_for(50), 1);

        let h = SplitMix64::new(2);
        let mut p = Pcsa::new(64, 32);
        let mut total = 0u64;
        for host in 0..100u64 {
            s.insert(&mut p, &h, host, 10_000);
            total += 10_000;
        }
        let est = s.estimate(&p);
        let rel = (est - total as f64).abs() / total as f64;
        assert!(rel < 3.0 * expected_error(64), "est={est:.0} rel={rel:.3}");
    }

    #[test]
    fn scaled_exact_matches_plain_insert() {
        let h = SplitMix64::new(6);
        let mut a = Pcsa::new(16, 24);
        let mut b = Pcsa::new(16, 24);
        ScaledSum::exact().insert(&mut a, &h, 3, 77);
        insert_value(&mut b, &h, 3, 77);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "scale must be at least 1")]
    fn zero_scale_rejected() {
        let _ = ScaledSum::new(0);
    }
}
