//! # dynagg-sketch
//!
//! Probabilistic counting substrates for dynamic in-network aggregation:
//!
//! * [`hash`] — deterministic 64-bit avalanche hashing (no external crates),
//! * [`rho`][mod@rho] — the Flajolet–Martin ρ function with its geometric distribution,
//! * [`fm`] — a single FM bit-sketch with OR-merge and the `R` run-length,
//! * [`pcsa`] — stochastic averaging over `m` bins (Probabilistic Counting
//!   with Stochastic Averaging, Flajolet & Martin 1985),
//! * [`sum`] — multi-insertion summation (Considine et al. 2004),
//! * [`age`] — the **age-counter matrix** that replaces sketch bits with
//!   integer ages; the substrate of Count-Sketch-Reset (Kennedy, Koch,
//!   Demers 2009, §IV), stored lazily as birth stamps under a global
//!   clock so ticking is O(own) instead of O(m·l),
//! * [`mod@reference`] — the retained eager (scalar `u8`) age matrix the
//!   lazy representation is differentially tested against,
//! * [`cutoff`] — the bit-expiry cutoff policies `f(k)` (paper: `7 + k/4`),
//! * [`codec`] — compact lossless wire encoding of matrices and sketches,
//! * [`estimate`] — shared estimator constants and error bounds.
//!
//! All structures are deterministic given a hasher seed, mergeable
//! (OR for bit sketches, element-wise `min` for age matrices), and
//! duplicate-insensitive, which is exactly what gossip dissemination needs.
//!
//! ## Estimator note
//!
//! The paper's inline formula reads `n ≈ φ·2^R`; Flajolet & Martin's
//! actual result is `E[R] ≈ log2(φn)`, i.e. `n̂ = 2^R / φ` (and
//! `n̂ = (m/φ)·2^{avg R}` with `m` bins). We implement the FM85-correct
//! estimator; see `DESIGN.md` §3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod age;
pub mod codec;
pub mod cutoff;
pub mod estimate;
pub mod fm;
pub mod hash;
pub mod pcsa;
pub mod reference;
pub mod rho;
pub mod sum;

pub use age::AgeMatrix;
pub use cutoff::Cutoff;
pub use estimate::{expected_error, PHI};
pub use fm::FmSketch;
pub use hash::{Hash64, SplitMix64, XxLike64};
pub use pcsa::Pcsa;
pub use rho::{bin_and_rho, rho};
