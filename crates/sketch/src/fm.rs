//! A single Flajolet–Martin bit sketch.
//!
//! The sketch is an `L`-bit register; inserting object `i` sets bit `ρ(i)`.
//! After many distinct insertions the low bits are all ones, the high bits
//! all zeroes, and the boundary (the run length `R` of contiguous ones from
//! bit 0) satisfies `E[R] ≈ log2(φ·n)` — see [`crate::estimate`].
//!
//! Two properties (paper §II-B) make the sketch gossip-friendly:
//!
//! 1. it is **decomposable**: the sketch of a union is the OR of sketches,
//! 2. it is **duplicate-insensitive**: ORing overlapping sketches is safe.

use crate::estimate;
use crate::hash::Hash64;
use crate::rho::rho;

/// Maximum supported register width (bits live in one `u64`).
pub const MAX_WIDTH: u8 = 63;

/// A single FM sketch of width `L ≤ 63` (bit `L` is the ρ-overflow slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FmSketch {
    bits: u64,
    l: u8,
}

impl FmSketch {
    /// Empty sketch of width `l` bits.
    ///
    /// # Panics
    /// Panics if `l` is zero or exceeds [`MAX_WIDTH`].
    pub fn new(l: u8) -> Self {
        assert!(l > 0 && l <= MAX_WIDTH, "sketch width must be in 1..={MAX_WIDTH}");
        Self { bits: 0, l }
    }

    /// Register width in bits.
    pub fn width(&self) -> u8 {
        self.l
    }

    /// Raw bit register, including the overflow slot at bit `l`.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// True if no object has been inserted (all bits zero).
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Insert an already-hashed object.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        self.set_bit(rho(hash, self.l));
    }

    /// Insert an object identifier using `hasher`.
    #[inline]
    pub fn insert<H: Hash64>(&mut self, hasher: &H, id: u64) {
        self.insert_hash(hasher.hash_u64(id));
    }

    /// Set bit `k` directly (`k ≤ L`). Used by the age matrix when it
    /// derives a bit view from counters.
    #[inline]
    pub fn set_bit(&mut self, k: u8) {
        debug_assert!(k <= self.l);
        self.bits |= 1u64 << k;
    }

    /// Whether bit `k` is set.
    #[inline]
    pub fn bit(&self, k: u8) -> bool {
        self.bits & (1u64 << k) != 0
    }

    /// OR-merge another sketch into this one.
    ///
    /// # Panics
    /// Panics if the widths differ — merging different geometries would
    /// silently corrupt the estimate.
    #[inline]
    pub fn merge(&mut self, other: &FmSketch) {
        assert_eq!(self.l, other.l, "cannot merge sketches of different widths");
        self.bits |= other.bits;
    }

    /// OR in a raw register whose geometry was already validated by the
    /// caller ([`crate::pcsa::Pcsa::merge`] checks once per merge, not
    /// once per bin).
    #[inline]
    pub(crate) fn or_bits_unchecked(&mut self, bits: u64) {
        self.bits |= bits;
    }

    /// `R(A)`: the length of the run of contiguous ones starting at bit 0.
    /// This is the quantity FM85 relates to `log2(φ·n)`.
    #[inline]
    pub fn r(&self) -> u8 {
        ((!self.bits).trailing_zeros() as u8).min(self.l)
    }

    /// Single-sketch cardinality estimate `2^R / φ`.
    ///
    /// High variance (≈1.12 binary orders of magnitude); prefer
    /// [`crate::pcsa::Pcsa`] for real use. Exposed for tests and teaching.
    pub fn estimate(&self) -> f64 {
        estimate::estimate_from_mean_r(1, f64::from(self.r()))
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.bits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SplitMix64;

    #[test]
    fn empty_sketch_has_r_zero() {
        let s = FmSketch::new(24);
        assert_eq!(s.r(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn r_counts_contiguous_ones() {
        let mut s = FmSketch::new(24);
        s.set_bit(0);
        s.set_bit(1);
        s.set_bit(3); // gap at 2
        assert_eq!(s.r(), 2);
        s.set_bit(2);
        assert_eq!(s.r(), 4);
    }

    #[test]
    fn r_saturates_at_width() {
        let mut s = FmSketch::new(4);
        for k in 0..=4 {
            s.set_bit(k);
        }
        assert_eq!(s.r(), 4);
    }

    #[test]
    fn merge_is_or() {
        let mut a = FmSketch::new(16);
        let mut b = FmSketch::new(16);
        a.set_bit(0);
        b.set_bit(1);
        a.merge(&b);
        assert!(a.bit(0) && a.bit(1));
        assert_eq!(a.r(), 2);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = FmSketch::new(16);
        let b = FmSketch::new(24);
        a.merge(&b);
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let h = SplitMix64::new(1);
        let mut a = FmSketch::new(24);
        a.insert(&h, 42);
        let snapshot = a;
        a.insert(&h, 42);
        a.insert(&h, 42);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn estimate_tracks_cardinality_within_fm_variance() {
        // A single sketch is noisy; averaged over 64 independent hashers the
        // mean of R should be near log2(phi * n).
        let n = 10_000u64;
        let trials = 64u64;
        let mut sum_r = 0f64;
        for t in 0..trials {
            let h = SplitMix64::new(t);
            let mut s = FmSketch::new(32);
            for i in 0..n {
                s.insert(&h, i);
            }
            sum_r += f64::from(s.r());
        }
        let mean_r = sum_r / trials as f64;
        let expected = (crate::PHI * n as f64).log2();
        assert!((mean_r - expected).abs() < 1.0, "mean R {mean_r:.2} vs expected {expected:.2}");
    }
}
