//! The age-counter matrix behind Count-Sketch-Reset (paper §IV-A, Fig. 5).
//!
//! Static counting sketches cannot heal: a bit, once set, has no way to
//! decay, and a departing host cannot know whether another live host still
//! sources the same bit. Count-Sketch-Reset's fix is to replace every bit
//! with an **age counter**:
//!
//! * a host that *sources* cell `(bin, k)` pins that counter to 0,
//! * every other counter increments by one each gossip round,
//! * gossip exchanges merge counters element-wise with `min`,
//! * a bit is considered set iff its age is within a cutoff `f(k)`
//!   ([`crate::cutoff::Cutoff`]).
//!
//! While a source is alive, the age of its cell anywhere in the network is
//! bounded (w.h.p.) by the gossip propagation time, which for bit `k` is
//! `≈ 7 + k/4` rounds under uniform gossip — independent of network size.
//! When the last source of a cell departs, the cell's minimum age grows by
//! exactly one per round everywhere, crosses the cutoff, and the bit
//! expires: the estimate self-heals.

use crate::cutoff::Cutoff;
use crate::estimate;
use crate::hash::Hash64;
use crate::pcsa::Pcsa;
use crate::rho::bin_and_rho;

/// Sentinel for "never sourced": behaves as +∞ under `min`.
pub const INF_AGE: u8 = u8::MAX;

/// Largest representable finite age; [`AgeMatrix::tick`] saturates here so a
/// very old cell never wraps around into looking fresh. All practical
/// cutoffs are far below this.
pub const MAX_FINITE_AGE: u8 = u8::MAX - 1;

/// An `m × (L+1)` matrix of age counters with min-merge semantics.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AgeMatrix {
    m: u32,
    l: u8,
    /// Row-major `m` rows of `l + 1` counters; `INF_AGE` = never sourced.
    ages: Box<[u8]>,
    /// Flat indices of cells this host sources (kept pinned at 0).
    /// Sorted and deduplicated.
    own: Vec<u32>,
}

impl AgeMatrix {
    /// Empty matrix with `m` bins (power of two), `l + 1` counters per bin,
    /// every counter at ∞ and no owned cells.
    ///
    /// # Panics
    /// Panics if `m` is not a power of two or `l` exceeds
    /// [`crate::fm::MAX_WIDTH`].
    pub fn new(m: u32, l: u8) -> Self {
        assert!(m.is_power_of_two(), "bin count must be a power of two");
        assert!(l > 0 && l <= crate::fm::MAX_WIDTH);
        let cells = (m as usize) * (usize::from(l) + 1);
        Self { m, l, ages: vec![INF_AGE; cells].into_boxed_slice(), own: Vec::new() }
    }

    /// Number of bins `m`.
    pub fn num_bins(&self) -> u32 {
        self.m
    }

    /// Register width `L`.
    pub fn width(&self) -> u8 {
        self.l
    }

    /// Counters per bin (`L + 1`).
    #[inline]
    fn row_len(&self) -> usize {
        usize::from(self.l) + 1
    }

    #[inline]
    fn flat(&self, bin: u32, k: u8) -> usize {
        debug_assert!(bin < self.m && k <= self.l);
        (bin as usize) * self.row_len() + usize::from(k)
    }

    /// Current age of cell `(bin, k)`; `INF_AGE` if never sourced.
    #[inline]
    pub fn age(&self, bin: u32, k: u8) -> u8 {
        self.ages[self.flat(bin, k)]
    }

    /// The raw row-major cell slice (`m` rows of `L + 1` ages). The wire
    /// codec streams this directly instead of copying cell-by-cell.
    #[inline]
    pub fn cells(&self) -> &[u8] {
        &self.ages
    }

    /// All `(bin, k, age)` triples with a finite age. Fig. 6 aggregates
    /// these across hosts into per-`k` CDFs.
    pub fn finite_cells(&self) -> impl Iterator<Item = (u32, u8, u8)> + '_ {
        let row = self.row_len();
        self.ages
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a != INF_AGE)
            .map(move |(i, &a)| ((i / row) as u32, (i % row) as u8, a))
    }

    /// Claim cell `(bin, k)`: this host becomes a source, pinning the age
    /// to zero until [`AgeMatrix::release_all`]. Claiming the same cell
    /// twice is a no-op (duplicate insensitivity).
    pub fn claim_cell(&mut self, bin: u32, k: u8) {
        let idx = self.flat(bin, k) as u32;
        self.ages[idx as usize] = 0;
        if let Err(pos) = self.own.binary_search(&idx) {
            self.own.insert(pos, idx);
        }
    }

    /// Claim the cell a plain OR-sketch would set for `id` — one identifier,
    /// used for counting hosts (paper: "one object at each host").
    pub fn claim_id<H: Hash64>(&mut self, hasher: &H, id: u64) -> (u32, u8) {
        let (bin, k) = bin_and_rho(hasher.hash_u64(id), self.m, self.l);
        self.claim_cell(bin, k);
        (bin, k)
    }

    /// Claim `value` cells via multi-insertion (Considine-style summation:
    /// host `id` registers `value` independent identifiers). Cost is
    /// `O(value)`; see [`crate::sum`] for scaled alternatives.
    pub fn claim_value<H: Hash64>(&mut self, hasher: &H, id: u64, value: u64) {
        for j in 0..value {
            let (bin, k) = bin_and_rho(hasher.hash_pair(id, j), self.m, self.l);
            self.claim_cell(bin, k);
        }
    }

    /// Number of distinct cells this host sources.
    pub fn owned_cells(&self) -> usize {
        self.own.len()
    }

    /// Whether this host sources `(bin, k)`.
    pub fn is_own(&self, bin: u32, k: u8) -> bool {
        self.own.binary_search(&(self.flat(bin, k) as u32)).is_ok()
    }

    /// Stop sourcing all owned cells (graceful departure): the cells keep
    /// their current age of 0 but resume aging on the next [`tick`].
    ///
    /// [`tick`]: AgeMatrix::tick
    pub fn release_all(&mut self) {
        self.own.clear();
    }

    /// One gossip round of aging: every counter increments (saturating at
    /// [`MAX_FINITE_AGE`]) *except* the cells this host sources, which stay
    /// pinned at 0. (Fig. 5 step 2.)
    pub fn tick(&mut self) {
        // Branchless increment so the loop vectorizes: +1 iff below the
        // finite cap (which also leaves the INF sentinel untouched).
        for a in self.ages.iter_mut() {
            *a += u8::from(*a < MAX_FINITE_AGE);
        }
        for &idx in &self.own {
            self.ages[idx as usize] = 0;
        }
    }

    /// Replace every counter from a flat row-major cell slice (wire
    /// decoding). Clears ownership: ages arriving over the wire are a
    /// peer's *view*, not sourcing duties.
    ///
    /// # Panics
    /// Panics if `cells` does not match the matrix geometry.
    pub fn load_ages(&mut self, cells: &[u8]) {
        assert_eq!(cells.len(), self.ages.len(), "cell count must match geometry");
        self.ages.copy_from_slice(cells);
        self.own.clear();
    }

    /// Element-wise min-merge of a peer's matrix (Fig. 5 step 5). Own cells
    /// stay pinned at 0 automatically because 0 is the lattice bottom.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn merge_min(&mut self, other: &AgeMatrix) {
        assert_eq!(self.m, other.m, "bin-count mismatch");
        assert_eq!(self.l, other.l, "width mismatch");
        // Branch-free row-wise min: both slices have identical length, so
        // the element loop compiles to packed byte-min instructions.
        for (a, &b) in self.ages.iter_mut().zip(other.ages.iter()) {
            *a = (*a).min(b);
        }
    }

    /// Derive the live-bit view under `cutoff` (Fig. 5 step 6): bit `(n, k)`
    /// is set iff its age is finite and `≤ f(k)`.
    pub fn bit_view(&self, cutoff: &Cutoff) -> Pcsa {
        let mut p = Pcsa::new(self.m, self.l);
        let row = self.row_len();
        for (i, &a) in self.ages.iter().enumerate() {
            if a == INF_AGE {
                continue;
            }
            let k = (i % row) as u8;
            if cutoff.admits(k, u32::from(a)) {
                p.set_cell((i / row) as u32, k);
            }
        }
        p
    }

    /// Cardinality estimate under `cutoff`: `(m/φ)·2^{avg R}` over the
    /// live-bit view (Fig. 5 step 7). Computed directly from the counters
    /// — no intermediate [`Pcsa`] is materialized; the engine reads every
    /// host's estimate every round, so this path must not allocate.
    pub fn estimate(&self, cutoff: &Cutoff) -> f64 {
        if !self.any_live(cutoff) {
            return 0.0;
        }
        estimate::estimate_from_mean_r(self.m, self.mean_r(cutoff))
    }

    /// Mean live-bit run length under `cutoff` — exposed separately for
    /// experiments that plot `R` directly. Allocation-free: `R` for a bin
    /// is the index of its first dead bit, read straight off the ages.
    pub fn mean_r(&self, cutoff: &Cutoff) -> f64 {
        let row = self.row_len();
        let mut sum: u32 = 0;
        for bin in self.ages.chunks_exact(row) {
            let mut r = 0u32;
            for (k, &a) in bin.iter().enumerate() {
                if a != INF_AGE && cutoff.admits(k as u8, u32::from(a)) {
                    r += 1;
                } else {
                    break;
                }
            }
            sum += r.min(u32::from(self.l));
        }
        f64::from(sum) / f64::from(self.m)
    }

    /// Whether any cell is live under `cutoff` (streaming; no allocation).
    fn any_live(&self, cutoff: &Cutoff) -> bool {
        let row = self.row_len();
        self.ages
            .iter()
            .enumerate()
            .any(|(i, &a)| a != INF_AGE && cutoff.admits((i % row) as u8, u32::from(a)))
    }

    /// Wire size in bytes: one byte per counter. This is what the gossip
    /// message carries; the bandwidth gap vs. [`Pcsa::wire_bytes`] (8× for
    /// byte counters vs. bits) is part of the Invert-Average cost argument.
    pub fn wire_bytes(&self) -> usize {
        self.ages.len()
    }

    /// Expected maximum live bit index for `n` sources — a helper for
    /// sizing experiments (bits above `log2(n)` are set with probability
    /// `< 1/2` network-wide).
    pub fn expected_top_bit(n: u64) -> u8 {
        (64 - n.leading_zeros()) as u8
    }
}

/// Shared estimator re-export so protocol code needs only this module.
pub use estimate::expected_error;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SplitMix64;

    #[test]
    fn new_matrix_is_all_infinite() {
        let m = AgeMatrix::new(8, 16);
        assert_eq!(m.finite_cells().count(), 0);
        assert_eq!(m.estimate(&Cutoff::paper_uniform()), 0.0);
    }

    #[test]
    fn claim_pins_to_zero_across_ticks() {
        let mut m = AgeMatrix::new(8, 16);
        m.claim_cell(3, 2);
        for _ in 0..10 {
            m.tick();
        }
        assert_eq!(m.age(3, 2), 0, "owned cell must stay pinned");
    }

    #[test]
    fn unowned_cells_age_by_one_per_tick() {
        let mut a = AgeMatrix::new(8, 16);
        let mut b = AgeMatrix::new(8, 16);
        a.claim_cell(1, 1);
        b.merge_min(&a); // b learns the cell at age 0
        for expected in 1..=5u8 {
            b.tick();
            assert_eq!(b.age(1, 1), expected);
        }
    }

    #[test]
    fn release_resumes_aging() {
        let mut m = AgeMatrix::new(8, 16);
        m.claim_cell(0, 0);
        m.tick();
        assert_eq!(m.age(0, 0), 0);
        m.release_all();
        m.tick();
        m.tick();
        assert_eq!(m.age(0, 0), 2);
    }

    #[test]
    fn merge_takes_elementwise_min() {
        let mut a = AgeMatrix::new(4, 8);
        let mut b = AgeMatrix::new(4, 8);
        a.claim_cell(0, 0);
        a.release_all();
        for _ in 0..5 {
            a.tick(); // a sees the cell at age 5
        }
        b.claim_cell(0, 0);
        b.release_all();
        b.tick(); // b sees it at age 1
        a.merge_min(&b);
        assert_eq!(a.age(0, 0), 1);
        // merging back the older view must not regress
        b.merge_min(&a);
        assert_eq!(b.age(0, 0), 1);
    }

    #[test]
    fn tick_saturates_instead_of_wrapping() {
        let mut m = AgeMatrix::new(4, 8);
        m.claim_cell(2, 3);
        m.release_all();
        for _ in 0..1000 {
            m.tick();
        }
        assert_eq!(m.age(2, 3), MAX_FINITE_AGE);
        assert_ne!(m.age(2, 3), INF_AGE, "saturated finite age must differ from infinity");
    }

    #[test]
    fn bit_view_applies_cutoff_per_index() {
        let cutoff = Cutoff::paper_uniform(); // f(0)=7, f(8)=9
        let mut m = AgeMatrix::new(4, 16);
        m.claim_cell(0, 0);
        m.claim_cell(0, 8);
        m.release_all();
        for _ in 0..8 {
            m.tick(); // both cells now at age 8
        }
        let bits = m.bit_view(&cutoff);
        assert!(!bits.bins()[0].bit(0), "age 8 > f(0)=7: expired");
        assert!(bits.bins()[0].bit(8), "age 8 <= f(8)=9: live");
    }

    #[test]
    fn infinite_cutoff_equals_static_sketch() {
        let h = SplitMix64::new(77);
        let mut m = AgeMatrix::new(16, 24);
        let mut p = Pcsa::new(16, 24);
        for id in 0..1_000u64 {
            m.claim_id(&h, id);
            p.insert(&h, id);
        }
        m.release_all();
        for _ in 0..200 {
            m.tick();
        }
        assert_eq!(m.bit_view(&Cutoff::Infinite), p);
    }

    #[test]
    fn claim_value_matches_multi_insert_sum_cells() {
        let h = SplitMix64::new(5);
        let mut m = AgeMatrix::new(16, 24);
        m.claim_value(&h, 42, 100);
        // 100 insertions cannot occupy more than 100 distinct cells, and
        // with 16 bins they should collide some but cover at least ~30.
        let owned = m.owned_cells();
        assert!((20..=100).contains(&owned), "owned = {owned}");
    }

    #[test]
    fn estimate_counts_sources() {
        let h = SplitMix64::new(123);
        // Simulate a converged network of n hosts by claiming all ids into
        // one matrix (gossip would min-merge everyone's view to this).
        let n = 20_000u64;
        let mut m = AgeMatrix::new(64, 24);
        for id in 0..n {
            m.claim_id(&h, id);
        }
        let est = m.estimate(&Cutoff::paper_uniform());
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.3, "est={est:.0} rel={rel:.3}");
    }

    #[test]
    fn expected_top_bit_is_log2ish() {
        assert_eq!(AgeMatrix::expected_top_bit(1), 1);
        assert_eq!(AgeMatrix::expected_top_bit(1024), 11);
    }
}
