//! The age-counter matrix behind Count-Sketch-Reset (paper §IV-A, Fig. 5).
//!
//! Static counting sketches cannot heal: a bit, once set, has no way to
//! decay, and a departing host cannot know whether another live host still
//! sources the same bit. Count-Sketch-Reset's fix is to replace every bit
//! with an **age counter**:
//!
//! * a host that *sources* cell `(bin, k)` pins that counter to 0,
//! * every other counter increments by one each gossip round,
//! * gossip exchanges merge counters element-wise with `min`,
//! * a bit is considered set iff its age is within a cutoff `f(k)`
//!   ([`crate::cutoff::Cutoff`]).
//!
//! While a source is alive, the age of its cell anywhere in the network is
//! bounded (w.h.p.) by the gossip propagation time, which for bit `k` is
//! `≈ 7 + k/4` rounds under uniform gossip — independent of network size.
//! When the last source of a cell departs, the cell's minimum age grows by
//! exactly one per round everywhere, crosses the cutoff, and the bit
//! expires: the estimate self-heals.
//!
//! # Lazy aging
//!
//! Aging is global — every counter moves by the same +1 each round — so
//! storing ages eagerly wastes an O(m·l) write pass per host per round.
//! This implementation stores a per-cell **birth stamp** plus one
//! matrix-global clock `now`, with the invariant
//!
//! ```text
//! age(cell) = min(now + 1 − stamp, MAX_FINITE_AGE)     stamp ∈ [1, now+1]
//! stamp = 0  ⇔  age = INF_AGE (never sourced)
//! ```
//!
//! so [`tick`](AgeMatrix::tick) is a clock bump plus re-pinning the
//! O(own) sourced cells, and [`merge_min`](AgeMatrix::merge_min) becomes
//! a branchless element-wise **max of stamps** (larger stamp = younger
//! cell; 0 is the identity, preserving the ∞ sentinel). Min-of-ages and
//! max-of-stamps agree even past the saturation boundary because
//! clamping is monotone: `clamp(min(e₁,e₂)) = min(clamp(e₁), clamp(e₂))`.
//! When two matrices' clocks differ (a decoded wire view restarts at the
//! base clock), the peer's stamps are translated by the clock delta
//! first, which preserves each cell's true elapsed age exactly.
//!
//! Stamps are `u16`; the clock starts at [`MAX_FINITE_AGE`] so every
//! representable age has a stamp ≥ 1, and once the clock nears `u16::MAX`
//! (once per ~65 000 ticks) the matrix *rebases*: stamps shift down in
//! one pass and the clock returns to base, preserving every clamped age.
//! The eager representation this replaced is retained verbatim as
//! [`crate::reference::RefAgeMatrix`] and the two are proven
//! indistinguishable by the differential suite in
//! `tests/lazy_equivalence.rs`.
//!
//! Each matrix also carries a **mutation version** ([`AgeMatrix::version`])
//! keying the codec's per-snapshot encode memo: a host fanning one
//! `Arc<AgeMatrix>` snapshot to k partners encodes it once.

use crate::cutoff::Cutoff;
use crate::estimate;
use crate::hash::Hash64;
use crate::pcsa::Pcsa;
use crate::rho::bin_and_rho;
use std::sync::{Arc, Mutex};

/// Sentinel for "never sourced": behaves as +∞ under `min`.
pub const INF_AGE: u8 = u8::MAX;

/// Largest representable finite age; ages saturate here so a very old
/// cell never wraps around into looking fresh. All practical cutoffs are
/// far below this.
pub const MAX_FINITE_AGE: u8 = u8::MAX - 1;

/// The clock value of a fresh (or freshly decoded) matrix. Starting at
/// `MAX_FINITE_AGE` keeps every stamp for ages `0..=MAX_FINITE_AGE`
/// at least 1, so stamp 0 can mean ∞ unambiguously.
const BASE_NOW: u16 = MAX_FINITE_AGE as u16;

/// Clock value that triggers a rebase at the next [`AgeMatrix::tick`],
/// leaving headroom so `now + 2` can never overflow between rebases.
const REBASE_AT: u16 = 0xFF00;

/// Clamped age of a stamp under clock `now` (`INF_AGE` for the 0 sentinel).
#[inline]
fn age_of(now: u16, s: u16) -> u8 {
    if s == 0 {
        INF_AGE
    } else {
        (u32::from(now) + 1 - u32::from(s)).min(u32::from(MAX_FINITE_AGE)) as u8
    }
}

/// Codec memo for one matrix: the encoded payload (and its length) of the
/// matrix state at `version`. Interior-mutable behind `&self` because
/// encoding happens on shared snapshots; never shared between matrix
/// objects (clones start empty), so a stale hit is impossible — any
/// mutation holds `&mut` and bumps the owner's version first.
#[derive(Debug, Default)]
pub(crate) struct EncodeSlot {
    /// Matrix version the memo was computed at (0 = empty; versions
    /// start at 1).
    pub(crate) version: u64,
    /// Encoded length in bytes (0 = not yet computed; real payloads are
    /// never empty — the header alone is 5 bytes).
    pub(crate) len: usize,
    /// Full encoded payload, if one was built (length-only probes fill
    /// just `len`).
    pub(crate) bytes: Option<Arc<Vec<u8>>>,
}

/// An `m × (L+1)` matrix of age counters with min-merge semantics,
/// stored lazily as birth stamps under a matrix-global clock.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct AgeMatrix {
    m: u32,
    l: u8,
    /// Matrix-global clock; a cell's age is `now + 1 − stamp`, clamped.
    now: u16,
    /// Register-major (column-major) birth stamps: `l + 1` columns of `m`
    /// stamps each, so column `k` — the cells the run-length scan reads —
    /// is contiguous. 0 = never sourced. The wire cell stream stays
    /// bin-major; [`dump_ages`](AgeMatrix::dump_ages) transposes.
    stamps: Box<[u16]>,
    /// Flat indices of cells this host sources (kept pinned at age 0).
    /// Sorted and deduplicated.
    own: Vec<u32>,
    /// Mutation version: bumped by every `&mut` method that can change
    /// observable state. Keys [`EncodeSlot`].
    version: u64,
    cache: Mutex<EncodeSlot>,
}

impl Clone for AgeMatrix {
    fn clone(&self) -> Self {
        Self {
            m: self.m,
            l: self.l,
            now: self.now,
            stamps: self.stamps.clone(),
            own: self.own.clone(),
            version: self.version,
            // Memos are per-object: a clone starts cold rather than
            // sharing a slot whose owner may mutate away from it.
            cache: Mutex::new(EncodeSlot::default()),
        }
    }
}

impl PartialEq for AgeMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m
            && self.l == other.l
            && self.own == other.own
            && self
                .stamps
                .iter()
                .zip(other.stamps.iter())
                .all(|(&a, &b)| age_of(self.now, a) == age_of(other.now, b))
    }
}

impl Eq for AgeMatrix {}

impl AgeMatrix {
    /// Empty matrix with `m` bins (power of two), `l + 1` counters per bin,
    /// every counter at ∞ and no owned cells.
    ///
    /// # Panics
    /// Panics if `m` is not a power of two or `l` exceeds
    /// [`crate::fm::MAX_WIDTH`].
    pub fn new(m: u32, l: u8) -> Self {
        assert!(m.is_power_of_two(), "bin count must be a power of two");
        assert!(l > 0 && l <= crate::fm::MAX_WIDTH);
        let cells = (m as usize) * (usize::from(l) + 1);
        Self {
            m,
            l,
            now: BASE_NOW,
            stamps: vec![0u16; cells].into_boxed_slice(),
            own: Vec::new(),
            version: 1,
            cache: Mutex::new(EncodeSlot::default()),
        }
    }

    /// Number of bins `m`.
    pub fn num_bins(&self) -> u32 {
        self.m
    }

    /// Register width `L`.
    pub fn width(&self) -> u8 {
        self.l
    }

    /// Mutation version. Monotone per object within a lineage of `&mut`
    /// calls; clones keep the version they were cloned at. Any call that
    /// can change an observable (ages, ownership) assigns a fresh value —
    /// including adversarial cell forgery, which goes through
    /// [`claim_cell`](AgeMatrix::claim_cell).
    pub fn version(&self) -> u64 {
        self.version
    }

    pub(crate) fn encode_cache(&self) -> &Mutex<EncodeSlot> {
        &self.cache
    }

    #[inline]
    fn bump(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Counters per bin (`L + 1`).
    #[inline]
    fn row_len(&self) -> usize {
        usize::from(self.l) + 1
    }

    #[inline]
    fn flat(&self, bin: u32, k: u8) -> usize {
        debug_assert!(bin < self.m && k <= self.l);
        usize::from(k) * (self.m as usize) + bin as usize
    }

    /// Current age of cell `(bin, k)`; `INF_AGE` if never sourced.
    #[inline]
    pub fn age(&self, bin: u32, k: u8) -> u8 {
        age_of(self.now, self.stamps[self.flat(bin, k)])
    }

    /// Append the bin-major clamped age bytes (the wire cell stream) to
    /// `out` — the wire order is independent of the register-major storage.
    /// The codec materializes this eager view at most once per
    /// [`version`](AgeMatrix::version); tests use it to compare
    /// representations.
    pub fn dump_ages(&self, out: &mut Vec<u8>) {
        out.reserve(self.stamps.len());
        let m = self.m as usize;
        let now = self.now;
        for bin in 0..m {
            out.extend(self.stamps[bin..].iter().step_by(m).map(|&s| age_of(now, s)));
        }
    }

    /// All `(bin, k, age)` triples with a finite age, in bin-major order.
    /// Fig. 6 aggregates these across hosts into per-`k` CDFs.
    pub fn finite_cells(&self) -> impl Iterator<Item = (u32, u8, u8)> + '_ {
        let m = self.m as usize;
        let now = self.now;
        (0..self.m).flat_map(move |bin| {
            self.stamps[bin as usize..]
                .iter()
                .step_by(m)
                .enumerate()
                .filter(|&(_, &s)| s != 0)
                .map(move |(k, &s)| (bin, k as u8, age_of(now, s)))
        })
    }

    /// Claim cell `(bin, k)`: this host becomes a source, pinning the age
    /// to zero until [`AgeMatrix::release_all`]. Claiming the same cell
    /// twice is a no-op (duplicate insensitivity).
    pub fn claim_cell(&mut self, bin: u32, k: u8) {
        let idx = self.flat(bin, k) as u32;
        self.stamps[idx as usize] = self.now + 1;
        if let Err(pos) = self.own.binary_search(&idx) {
            self.own.insert(pos, idx);
        }
        self.bump();
    }

    /// Claim the cell a plain OR-sketch would set for `id` — one identifier,
    /// used for counting hosts (paper: "one object at each host").
    pub fn claim_id<H: Hash64>(&mut self, hasher: &H, id: u64) -> (u32, u8) {
        let (bin, k) = bin_and_rho(hasher.hash_u64(id), self.m, self.l);
        self.claim_cell(bin, k);
        (bin, k)
    }

    /// Claim `value` cells via multi-insertion (Considine-style summation:
    /// host `id` registers `value` independent identifiers). Cost is
    /// `O(value)`; see [`crate::sum`] for scaled alternatives.
    pub fn claim_value<H: Hash64>(&mut self, hasher: &H, id: u64, value: u64) {
        for j in 0..value {
            let (bin, k) = bin_and_rho(hasher.hash_pair(id, j), self.m, self.l);
            self.claim_cell(bin, k);
        }
    }

    /// Number of distinct cells this host sources.
    pub fn owned_cells(&self) -> usize {
        self.own.len()
    }

    /// Whether this host sources `(bin, k)`.
    pub fn is_own(&self, bin: u32, k: u8) -> bool {
        self.own.binary_search(&(self.flat(bin, k) as u32)).is_ok()
    }

    /// Stop sourcing all owned cells (graceful departure): the cells keep
    /// their current age of 0 but resume aging on the next [`tick`].
    ///
    /// [`tick`]: AgeMatrix::tick
    pub fn release_all(&mut self) {
        self.own.clear();
        self.bump();
    }

    /// One gossip round of aging (Fig. 5 step 2): every counter increments
    /// (saturating at [`MAX_FINITE_AGE`]) *except* the cells this host
    /// sources, which stay pinned at 0.
    ///
    /// O(own), not O(m·l): unsourced cells age implicitly through the
    /// clock bump; only the pinned cells are rewritten.
    pub fn tick(&mut self) {
        if self.now >= REBASE_AT {
            self.rebase();
        }
        self.now += 1;
        let pin = self.now + 1;
        for &idx in &self.own {
            self.stamps[idx as usize] = pin;
        }
        self.bump();
    }

    /// Shift every stamp down so the clock returns to [`BASE_NOW`],
    /// preserving every clamped age (cells older than the clamp floor at
    /// stamp 1, which reads as exactly [`MAX_FINITE_AGE`] — the value the
    /// eager representation saturates to). Amortized cost ≈ one cell pass
    /// per 65 000 ticks.
    fn rebase(&mut self) {
        let shift = self.now - BASE_NOW;
        for s in self.stamps.iter_mut() {
            *s = (*s).saturating_sub(shift).max(u16::from(*s != 0));
        }
        self.now = BASE_NOW;
    }

    /// Replace every counter from a flat bin-major cell slice (wire
    /// decoding). Clears ownership: ages arriving over the wire are a
    /// peer's *view*, not sourcing duties. The clock restarts at base, so
    /// a decoded matrix merges through the clock-translation path.
    ///
    /// # Panics
    /// Panics if `cells` does not match the matrix geometry.
    pub fn load_ages(&mut self, cells: &[u8]) {
        assert_eq!(cells.len(), self.stamps.len(), "cell count must match geometry");
        self.now = BASE_NOW;
        let m = self.m as usize;
        let row = self.row_len();
        // One mapping covers both kinds: age a → stamp 255 − a puts age 0
        // at BASE_NOW + 1, age 254 at 1, and INF (255) at the 0 sentinel.
        for (bin, ages) in cells.chunks_exact(row).enumerate() {
            for (k, &a) in ages.iter().enumerate() {
                self.stamps[k * m + bin] = u16::from(u8::MAX - a);
            }
        }
        self.own.clear();
        self.bump();
    }

    /// Element-wise min-merge of a peer's matrix (Fig. 5 step 5), computed
    /// as a branchless word-level **max of birth stamps** (the compiler
    /// lowers each loop to packed `u16` max). Own cells stay pinned at 0
    /// automatically: their stamp `now + 1` is the lattice top.
    ///
    /// When the clocks differ (decoded views, hosts that missed rounds),
    /// the peer's stamps are translated by the clock delta first — an
    /// exact operation on each cell's true elapsed age, so merge results
    /// are identical to the eager element-wise min.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn merge_min(&mut self, other: &AgeMatrix) {
        assert_eq!(self.m, other.m, "bin-count mismatch");
        assert_eq!(self.l, other.l, "width mismatch");
        if self.now == other.now {
            // Aligned clocks — the lockstep common case: a pure lane max.
            for (s, &o) in self.stamps.iter_mut().zip(other.stamps.iter()) {
                *s = (*s).max(o);
            }
        } else if self.now > other.now {
            // Peer clock behind (decoded views start at base): lift its
            // stamps by the delta. No overflow: o ≤ other.now + 1, so
            // o + d ≤ self.now + 1. The ∞ sentinel maps to itself.
            let d = self.now - other.now;
            for (s, &o) in self.stamps.iter_mut().zip(other.stamps.iter()) {
                let t = if o == 0 { 0 } else { o + d };
                *s = (*s).max(t);
            }
        } else {
            // Peer clock ahead (this host missed rounds): lower its
            // stamps, flooring finite cells at 1 — ages past the clamp
            // stay exactly [`MAX_FINITE_AGE`], matching eager saturation.
            let d = other.now - self.now;
            for (s, &o) in self.stamps.iter_mut().zip(other.stamps.iter()) {
                let t = o.saturating_sub(d).max(u16::from(o != 0));
                *s = (*s).max(t);
            }
        }
        self.bump();
    }

    /// The matrix [`merge_min`](AgeMatrix::merge_min) would leave behind,
    /// built out of place: exactly `{ let mut c = self.clone(); c.merge_min(other); c }`
    /// (same ages, ownership, and version), but writing each merged stamp
    /// once into a fresh allocation instead of copying `self` and then
    /// rewriting it. Copy-on-write holders use this when a snapshot still
    /// pins the current allocation.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn merged_with(&self, other: &AgeMatrix) -> AgeMatrix {
        assert_eq!(self.m, other.m, "bin-count mismatch");
        assert_eq!(self.l, other.l, "width mismatch");
        let pairs = self.stamps.iter().zip(other.stamps.iter());
        let stamps: Box<[u16]> = if self.now == other.now {
            pairs.map(|(&s, &o)| s.max(o)).collect()
        } else if self.now > other.now {
            let d = self.now - other.now;
            pairs.map(|(&s, &o)| s.max(if o == 0 { 0 } else { o + d })).collect()
        } else {
            let d = other.now - self.now;
            pairs.map(|(&s, &o)| s.max(o.saturating_sub(d).max(u16::from(o != 0)))).collect()
        };
        AgeMatrix {
            m: self.m,
            l: self.l,
            now: self.now,
            stamps,
            own: self.own.clone(),
            version: self.version.wrapping_add(1),
            cache: Mutex::new(EncodeSlot::default()),
        }
    }

    /// Lowest stamp a finite cell at register `k` may hold and still be
    /// admitted by `cutoff`. Precomputing this per call site turns the
    /// per-cell float compare of `Cutoff::admits` into one `u16` compare;
    /// stamp 0 (∞) never passes because the floor is always ≥ 1.
    fn stamp_floor(&self, cutoff: &Cutoff, k: u8) -> u16 {
        match cutoff.threshold(k) {
            // Infinite cutoff: every finite stamp is live.
            None => 1,
            Some(t) => {
                if t.is_nan() || t < 0.0 {
                    // Negative (or NaN) threshold admits no age at all.
                    // `now + 2` exceeds every valid stamp.
                    self.now + 2
                } else if t >= f64::from(MAX_FINITE_AGE) {
                    // Ages clamp at MAX_FINITE_AGE, so every finite cell
                    // is admitted.
                    1
                } else {
                    // 0 ≤ t < 254: `age ≤ t ⇔ age ≤ ⌊t⌋` for integer
                    // ages, and truncation is floor for non-negative t.
                    self.now + 1 - t as u16
                }
            }
        }
    }

    /// Fill `lo[..row]` with per-register admission floors.
    #[inline]
    fn stamp_floors(&self, cutoff: &Cutoff, lo: &mut [u16; MAX_ROW]) {
        for (k, slot) in lo[..self.row_len()].iter_mut().enumerate() {
            *slot = self.stamp_floor(cutoff, k as u8);
        }
    }

    /// Derive the live-bit view under `cutoff` (Fig. 5 step 6): bit `(n, k)`
    /// is set iff its age is finite and `≤ f(k)`. Allocates a fresh
    /// [`Pcsa`]; per-round readouts should reuse a buffer via
    /// [`bit_view_into`](AgeMatrix::bit_view_into).
    pub fn bit_view(&self, cutoff: &Cutoff) -> Pcsa {
        let mut p = Pcsa::new(self.m, self.l);
        self.bit_view_into(cutoff, &mut p);
        p
    }

    /// [`bit_view`](AgeMatrix::bit_view) into a caller-owned buffer:
    /// clears `out` and sets the live bits, allocating nothing.
    ///
    /// # Panics
    /// Panics if `out`'s geometry does not match the matrix.
    pub fn bit_view_into(&self, cutoff: &Cutoff, out: &mut Pcsa) {
        assert_eq!(out.num_bins(), self.m, "bin-count mismatch");
        assert_eq!(out.width(), self.l, "width mismatch");
        out.clear();
        let m = self.m as usize;
        let mut lo = [0u16; MAX_ROW];
        self.stamp_floors(cutoff, &mut lo);
        for (k, (col, &f)) in self.stamps.chunks_exact(m).zip(&lo[..self.row_len()]).enumerate() {
            for (bin, &s) in col.iter().enumerate() {
                if s >= f {
                    out.set_cell(bin as u32, k as u8);
                }
            }
        }
    }

    /// Cardinality estimate under `cutoff`: `(m/φ)·2^{avg R}` over the
    /// live-bit view (Fig. 5 step 7). Computed directly from the stamps —
    /// no intermediate [`Pcsa`] is materialized; the engine reads every
    /// host's estimate every round, so this path must not allocate.
    pub fn estimate(&self, cutoff: &Cutoff) -> f64 {
        // No any-live pre-scan: `estimate_from_mean_r(m, 0.0)` is exactly
        // `(m/φ)·(2⁰ − 2⁻⁰) = 0.0`, so a dead matrix falls out of the
        // formula identically. The run sum is an integer, so the exp2
        // evaluation comes from a per-geometry memo table.
        estimate::estimate_from_run_sum(self.m, self.l, self.live_run_sum(cutoff))
    }

    /// Mean live-bit run length under `cutoff` — exposed separately for
    /// experiments that plot `R` directly.
    pub fn mean_r(&self, cutoff: &Cutoff) -> f64 {
        f64::from(self.live_run_sum(cutoff)) / f64::from(self.m)
    }

    /// `Σ_bins min(R, L)` under `cutoff`: the integer the estimate is a
    /// function of. `R` for a bin is the index of its first dead register,
    /// so `Σ min(R, L) = Σ_{k<L} |{bins whose run survives column k}|` —
    /// which the register-major layout turns into a branch-free sweep of
    /// contiguous columns with a per-bin alive flag, stopping at the first
    /// column no run survives (`≈ log2(n/m)` of them once converged). The
    /// engine reads every host's estimate every round; this formulation
    /// both vectorizes and reads only the surviving-column prefix.
    fn live_run_sum(&self, cutoff: &Cutoff) -> u32 {
        let m = self.m as usize;
        let mut lo = [0u16; MAX_ROW];
        self.stamp_floors(cutoff, &mut lo);
        let mut sum = 0u32;
        // Stack budget for the per-bin alive flags; geometries beyond it
        // (none in practice — the paper uses 64 bins) take a heap buffer.
        // Kept small: the whole array is initialized on every call, and
        // this path runs once per host per round.
        const MAX_BINS_STACK: usize = 256;
        let mut stack = [1u8; MAX_BINS_STACK];
        let mut heap;
        let alive = if m <= MAX_BINS_STACK {
            &mut stack[..m]
        } else {
            heap = vec![1u8; m];
            &mut heap[..]
        };
        for (col, &f) in self.stamps.chunks_exact(m).zip(&lo[..usize::from(self.l)]) {
            let mut survivors = 0u32;
            for (a, &s) in alive.iter_mut().zip(col) {
                *a &= u8::from(s >= f);
                survivors += u32::from(*a);
            }
            sum += survivors;
            if survivors == 0 {
                break;
            }
        }
        sum
    }

    /// Wire size in bytes: one byte per counter. This is what the gossip
    /// message carries; the bandwidth gap vs. [`Pcsa::wire_bytes`] (8× for
    /// byte counters vs. bits) is part of the Invert-Average cost argument.
    pub fn wire_bytes(&self) -> usize {
        self.stamps.len()
    }

    /// Expected maximum live bit index for `n` sources — a helper for
    /// sizing experiments (bits above `log2(n)` are set with probability
    /// `< 1/2` network-wide).
    pub fn expected_top_bit(n: u64) -> u8 {
        (64 - n.leading_zeros()) as u8
    }
}

/// Largest `L + 1` row length ([`crate::fm::MAX_WIDTH`] + 1); sizes the
/// stack-allocated admission-floor table.
const MAX_ROW: usize = crate::fm::MAX_WIDTH as usize + 1;

/// Shared estimator re-export so protocol code needs only this module.
pub use estimate::expected_error;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SplitMix64;

    #[test]
    fn new_matrix_is_all_infinite() {
        let m = AgeMatrix::new(8, 16);
        assert_eq!(m.finite_cells().count(), 0);
        assert_eq!(m.estimate(&Cutoff::paper_uniform()), 0.0);
    }

    #[test]
    fn claim_pins_to_zero_across_ticks() {
        let mut m = AgeMatrix::new(8, 16);
        m.claim_cell(3, 2);
        for _ in 0..10 {
            m.tick();
        }
        assert_eq!(m.age(3, 2), 0, "owned cell must stay pinned");
    }

    #[test]
    fn unowned_cells_age_by_one_per_tick() {
        let mut a = AgeMatrix::new(8, 16);
        let mut b = AgeMatrix::new(8, 16);
        a.claim_cell(1, 1);
        b.merge_min(&a); // b learns the cell at age 0
        for expected in 1..=5u8 {
            b.tick();
            assert_eq!(b.age(1, 1), expected);
        }
    }

    #[test]
    fn release_resumes_aging() {
        let mut m = AgeMatrix::new(8, 16);
        m.claim_cell(0, 0);
        m.tick();
        assert_eq!(m.age(0, 0), 0);
        m.release_all();
        m.tick();
        m.tick();
        assert_eq!(m.age(0, 0), 2);
    }

    #[test]
    fn merge_takes_elementwise_min() {
        let mut a = AgeMatrix::new(4, 8);
        let mut b = AgeMatrix::new(4, 8);
        a.claim_cell(0, 0);
        a.release_all();
        for _ in 0..5 {
            a.tick(); // a sees the cell at age 5
        }
        b.claim_cell(0, 0);
        b.release_all();
        b.tick(); // b sees it at age 1
        a.merge_min(&b);
        assert_eq!(a.age(0, 0), 1);
        // merging back the older view must not regress
        b.merge_min(&a);
        assert_eq!(b.age(0, 0), 1);
    }

    #[test]
    fn misaligned_clocks_merge_exactly() {
        // a and b tick different amounts before merging, so the stamp
        // translation path runs in both directions.
        let mut a = AgeMatrix::new(4, 8);
        let mut b = AgeMatrix::new(4, 8);
        a.claim_cell(0, 0);
        a.claim_cell(1, 3);
        a.release_all();
        for _ in 0..9 {
            a.tick();
        }
        b.claim_cell(1, 3);
        b.claim_cell(2, 2);
        b.release_all();
        for _ in 0..3 {
            b.tick();
        }
        let mut ab = a.clone();
        ab.merge_min(&b); // self clock ahead
        assert_eq!(ab.age(0, 0), 9);
        assert_eq!(ab.age(1, 3), 3);
        assert_eq!(ab.age(2, 2), 3);
        b.merge_min(&a); // self clock behind
        assert_eq!(b.age(0, 0), 9);
        assert_eq!(b.age(1, 3), 3);
        assert_eq!(b.age(2, 2), 3);
    }

    #[test]
    fn tick_saturates_instead_of_wrapping() {
        let mut m = AgeMatrix::new(4, 8);
        m.claim_cell(2, 3);
        m.release_all();
        for _ in 0..1000 {
            m.tick();
        }
        assert_eq!(m.age(2, 3), MAX_FINITE_AGE);
        assert_ne!(m.age(2, 3), INF_AGE, "saturated finite age must differ from infinity");
    }

    #[test]
    fn clock_rebase_preserves_ages() {
        // Drive the clock across several rebase boundaries with live
        // sources at every age class: pinned, finite, saturated, ∞.
        let mut m = AgeMatrix::new(4, 8);
        m.claim_cell(0, 0); // stays pinned forever
        m.claim_cell(1, 1);
        for _ in 0..200_000u32 {
            m.tick();
        }
        m.release_all();
        m.claim_cell(2, 2); // fresh claim long after the first rebase
        for _ in 0..7 {
            m.tick();
        }
        assert_eq!(m.age(0, 0), 7, "released cell ages from release");
        assert_eq!(m.age(1, 1), 7);
        assert_eq!(m.age(2, 2), 0, "still owned");
        assert_eq!(m.age(3, 3), INF_AGE);
    }

    #[test]
    fn bit_view_applies_cutoff_per_index() {
        let cutoff = Cutoff::paper_uniform(); // f(0)=7, f(8)=9
        let mut m = AgeMatrix::new(4, 16);
        m.claim_cell(0, 0);
        m.claim_cell(0, 8);
        m.release_all();
        for _ in 0..8 {
            m.tick(); // both cells now at age 8
        }
        let bits = m.bit_view(&cutoff);
        assert!(!bits.bins()[0].bit(0), "age 8 > f(0)=7: expired");
        assert!(bits.bins()[0].bit(8), "age 8 <= f(8)=9: live");
    }

    #[test]
    fn bit_view_into_reuses_buffer() {
        let h = SplitMix64::new(3);
        let mut m = AgeMatrix::new(8, 16);
        for id in 0..50u64 {
            m.claim_id(&h, id);
        }
        let mut buf = Pcsa::new(8, 16);
        buf.set_cell(7, 16); // stale content must be cleared
        m.bit_view_into(&Cutoff::paper_uniform(), &mut buf);
        assert_eq!(buf, m.bit_view(&Cutoff::paper_uniform()));
    }

    #[test]
    fn infinite_cutoff_equals_static_sketch() {
        let h = SplitMix64::new(77);
        let mut m = AgeMatrix::new(16, 24);
        let mut p = Pcsa::new(16, 24);
        for id in 0..1_000u64 {
            m.claim_id(&h, id);
            p.insert(&h, id);
        }
        m.release_all();
        for _ in 0..200 {
            m.tick();
        }
        assert_eq!(m.bit_view(&Cutoff::Infinite), p);
    }

    #[test]
    fn claim_value_matches_multi_insert_sum_cells() {
        let h = SplitMix64::new(5);
        let mut m = AgeMatrix::new(16, 24);
        m.claim_value(&h, 42, 100);
        // 100 insertions cannot occupy more than 100 distinct cells, and
        // with 16 bins they should collide some but cover at least ~30.
        let owned = m.owned_cells();
        assert!((20..=100).contains(&owned), "owned = {owned}");
    }

    #[test]
    fn estimate_counts_sources() {
        let h = SplitMix64::new(123);
        // Simulate a converged network of n hosts by claiming all ids into
        // one matrix (gossip would min-merge everyone's view to this).
        let n = 20_000u64;
        let mut m = AgeMatrix::new(64, 24);
        for id in 0..n {
            m.claim_id(&h, id);
        }
        let est = m.estimate(&Cutoff::paper_uniform());
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.3, "est={est:.0} rel={rel:.3}");
    }

    #[test]
    fn mutators_bump_the_version() {
        let mut m = AgeMatrix::new(8, 16);
        let mut last = m.version();
        let mut expect_bump = |m: &AgeMatrix, what: &str| {
            assert_ne!(m.version(), last, "{what} must assign a fresh version");
            last = m.version();
        };
        m.claim_cell(1, 2);
        expect_bump(&m, "claim_cell");
        m.tick();
        expect_bump(&m, "tick");
        m.release_all();
        expect_bump(&m, "release_all");
        let mut other = AgeMatrix::new(8, 16);
        other.claim_cell(0, 0);
        m.merge_min(&other);
        expect_bump(&m, "merge_min");
        let mut cells = Vec::new();
        m.dump_ages(&mut cells);
        m.load_ages(&cells);
        expect_bump(&m, "load_ages");
    }

    #[test]
    fn clone_preserves_state_but_not_the_memo() {
        let h = SplitMix64::new(7);
        let mut m = AgeMatrix::new(16, 24);
        for id in 0..40u64 {
            m.claim_id(&h, id);
        }
        m.tick();
        let c = m.clone();
        assert_eq!(c, m);
        assert_eq!(c.version(), m.version());
        assert_eq!(c.encode_cache().lock().unwrap().version, 0, "clone starts cold");
    }

    #[test]
    fn expected_top_bit_is_log2ish() {
        assert_eq!(AgeMatrix::expected_top_bit(1), 1);
        assert_eq!(AgeMatrix::expected_top_bit(1024), 11);
    }
}
