//! Retained scalar reference for the lazy-aged [`AgeMatrix`].
//!
//! [`crate::age::AgeMatrix`] stores birth stamps and a matrix-global clock
//! so that `tick` is O(own) instead of O(m·l). Every golden digest in the
//! repo pins behavior of the *eager* representation it replaced — one `u8`
//! age per cell, incremented cell-by-cell each round — so the lazy matrix
//! is only correct if the two can never be told apart through any public
//! observation: ages, estimates, cutoff admits, or encoded wire bytes.
//!
//! [`RefAgeMatrix`] *is* that eager representation, kept verbatim (same
//! branchless tick, same scalar min-merge, same estimate path), plus an
//! independent run-length encoder producing the exact wire format of
//! [`crate::codec::encode_ages`]. The differential proptests in
//! `tests/lazy_equivalence.rs` drive both implementations through
//! arbitrary interleaved claim/tick/merge/release/load programs — the
//! same harness style as the wheel-vs-heap queue suite — and assert they
//! never disagree.
//!
//! This module is test infrastructure: nothing on a hot path uses it, and
//! `perf_smoke`'s `sketch` section benchmarks it as the "before" column.
//!
//! [`AgeMatrix`]: crate::age::AgeMatrix

use crate::age::{INF_AGE, MAX_FINITE_AGE};
use crate::cutoff::Cutoff;
use crate::estimate;
use crate::hash::Hash64;
use crate::pcsa::Pcsa;
use crate::rho::bin_and_rho;

/// The eager `m × (L+1)` age-counter matrix: one `u8` per cell, aged by a
/// full pass per [`tick`](RefAgeMatrix::tick).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefAgeMatrix {
    m: u32,
    l: u8,
    /// Row-major `m` rows of `l + 1` counters; `INF_AGE` = never sourced.
    ages: Box<[u8]>,
    /// Flat indices of cells this host sources (kept pinned at 0).
    own: Vec<u32>,
}

impl RefAgeMatrix {
    /// Empty matrix with `m` bins (power of two), `l + 1` counters per bin.
    ///
    /// # Panics
    /// Panics on the same geometry bounds as [`crate::age::AgeMatrix::new`].
    pub fn new(m: u32, l: u8) -> Self {
        assert!(m.is_power_of_two(), "bin count must be a power of two");
        assert!(l > 0 && l <= crate::fm::MAX_WIDTH);
        let cells = (m as usize) * (usize::from(l) + 1);
        Self { m, l, ages: vec![INF_AGE; cells].into_boxed_slice(), own: Vec::new() }
    }

    /// Number of bins `m`.
    pub fn num_bins(&self) -> u32 {
        self.m
    }

    /// Register width `L`.
    pub fn width(&self) -> u8 {
        self.l
    }

    #[inline]
    fn row_len(&self) -> usize {
        usize::from(self.l) + 1
    }

    #[inline]
    fn flat(&self, bin: u32, k: u8) -> usize {
        debug_assert!(bin < self.m && k <= self.l);
        (bin as usize) * self.row_len() + usize::from(k)
    }

    /// Current age of cell `(bin, k)`; `INF_AGE` if never sourced.
    #[inline]
    pub fn age(&self, bin: u32, k: u8) -> u8 {
        self.ages[self.flat(bin, k)]
    }

    /// The raw row-major cell slice.
    pub fn cells(&self) -> &[u8] {
        &self.ages
    }

    /// Claim cell `(bin, k)`: pin its age to zero until
    /// [`release_all`](RefAgeMatrix::release_all).
    pub fn claim_cell(&mut self, bin: u32, k: u8) {
        let idx = self.flat(bin, k) as u32;
        self.ages[idx as usize] = 0;
        if let Err(pos) = self.own.binary_search(&idx) {
            self.own.insert(pos, idx);
        }
    }

    /// Claim the cell an OR-sketch would set for `id`.
    pub fn claim_id<H: Hash64>(&mut self, hasher: &H, id: u64) -> (u32, u8) {
        let (bin, k) = bin_and_rho(hasher.hash_u64(id), self.m, self.l);
        self.claim_cell(bin, k);
        (bin, k)
    }

    /// Claim `value` cells via multi-insertion.
    pub fn claim_value<H: Hash64>(&mut self, hasher: &H, id: u64, value: u64) {
        for j in 0..value {
            let (bin, k) = bin_and_rho(hasher.hash_pair(id, j), self.m, self.l);
            self.claim_cell(bin, k);
        }
    }

    /// Number of distinct cells this host sources.
    pub fn owned_cells(&self) -> usize {
        self.own.len()
    }

    /// Stop sourcing all owned cells.
    pub fn release_all(&mut self) {
        self.own.clear();
    }

    /// One round of aging: every counter increments (saturating at
    /// [`MAX_FINITE_AGE`]) except owned cells, which stay pinned at 0.
    pub fn tick(&mut self) {
        for a in self.ages.iter_mut() {
            *a += u8::from(*a < MAX_FINITE_AGE);
        }
        for &idx in &self.own {
            self.ages[idx as usize] = 0;
        }
    }

    /// Replace every counter from a flat row-major slice and clear
    /// ownership (wire-decode semantics).
    ///
    /// # Panics
    /// Panics if `cells` does not match the matrix geometry.
    pub fn load_ages(&mut self, cells: &[u8]) {
        assert_eq!(cells.len(), self.ages.len(), "cell count must match geometry");
        self.ages.copy_from_slice(cells);
        self.own.clear();
    }

    /// Element-wise scalar min-merge.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn merge_min(&mut self, other: &RefAgeMatrix) {
        assert_eq!(self.m, other.m, "bin-count mismatch");
        assert_eq!(self.l, other.l, "width mismatch");
        for (a, &b) in self.ages.iter_mut().zip(other.ages.iter()) {
            *a = (*a).min(b);
        }
    }

    /// Live-bit view under `cutoff`.
    pub fn bit_view(&self, cutoff: &Cutoff) -> Pcsa {
        let mut p = Pcsa::new(self.m, self.l);
        let row = self.row_len();
        for (i, &a) in self.ages.iter().enumerate() {
            if a == INF_AGE {
                continue;
            }
            let k = (i % row) as u8;
            if cutoff.admits(k, u32::from(a)) {
                p.set_cell((i / row) as u32, k);
            }
        }
        p
    }

    /// Cardinality estimate under `cutoff` (eager path: an any-live scan
    /// followed by the per-bin run walk, exactly as shipped before the
    /// lazy rewrite).
    pub fn estimate(&self, cutoff: &Cutoff) -> f64 {
        if !self.any_live(cutoff) {
            return 0.0;
        }
        estimate::estimate_from_mean_r(self.m, self.mean_r(cutoff))
    }

    /// Mean live-bit run length under `cutoff`.
    pub fn mean_r(&self, cutoff: &Cutoff) -> f64 {
        let row = self.row_len();
        let mut sum: u32 = 0;
        for bin in self.ages.chunks_exact(row) {
            let mut r = 0u32;
            for (k, &a) in bin.iter().enumerate() {
                if a != INF_AGE && cutoff.admits(k as u8, u32::from(a)) {
                    r += 1;
                } else {
                    break;
                }
            }
            sum += r.min(u32::from(self.l));
        }
        f64::from(sum) / f64::from(self.m)
    }

    fn any_live(&self, cutoff: &Cutoff) -> bool {
        let row = self.row_len();
        self.ages
            .iter()
            .enumerate()
            .any(|(i, &a)| a != INF_AGE && cutoff.admits((i % row) as u8, u32::from(a)))
    }

    /// Independent run-length encoder producing the wire format of
    /// [`crate::codec::encode_ages`], written from the format description
    /// rather than shared helpers so a codec bug cannot hide from the
    /// differential suite: header (`m` LE, `l`), then alternating
    /// `(tag, len u16 LE)` chunks — tag 0 an `INF` run, tag 1 a literal
    /// run followed by its bytes — with runs capped at `u16::MAX`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.m.to_le_bytes());
        out.push(self.l);
        let mut i = 0usize;
        while i < self.ages.len() {
            let inf = self.ages[i] == INF_AGE;
            let mut j = i;
            while j < self.ages.len()
                && (self.ages[j] == INF_AGE) == inf
                && j - i < usize::from(u16::MAX)
            {
                j += 1;
            }
            out.push(u8::from(!inf));
            out.extend_from_slice(&((j - i) as u16).to_le_bytes());
            if !inf {
                out.extend_from_slice(&self.ages[i..j]);
            }
            i = j;
        }
        out
    }
}
