//! Compact wire encoding for sketch gossip payloads.
//!
//! The counter matrix dominates Count-Sketch-Reset's bandwidth (§IV-B's
//! cost argument, our `ablation_bandwidth`). Real deployments would not
//! ship raw byte grids: a converged matrix is mostly ∞ ("never sourced")
//! in the high bits and small ages in the low bits. This module provides a
//! simple, dependency-free encoding exploiting exactly that:
//!
//! * **age matrices** — run-length encoding of the ∞ sentinel interleaved
//!   with literal runs of finite ages (both with u16 lengths),
//! * **PCSA sketches** — the raw bit registers, bit-packed little-endian.
//!
//! The codec is exact (lossless round-trip, property-tested) and typically
//! shrinks converged matrices 2–4× and sparse (young) matrices far more.
//! The simulator's bandwidth accounting intentionally reports *raw* sizes
//! to stay comparable with the paper; `encoded_len` gives the deployment
//! number (and backs `wire = "measured"` scenario accounting).
//!
//! Encoding is **memoized per mutation version**: both payload types carry
//! a version ([`AgeMatrix::version`], [`Pcsa::version`]) and a per-object
//! slot, so a host fanning one `Arc` snapshot to k partners pays the run
//! decomposition once and the k−1 remaining sends are a `memcpy`. A
//! length-only probe ([`encoded_len_ages`]) fills the same slot without
//! building the payload.

use crate::age::{AgeMatrix, EncodeSlot, INF_AGE};
use crate::pcsa::Pcsa;
use std::sync::Arc;

/// Encoding errors (decode side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-structure.
    Truncated,
    /// Header fields disagree with payload length or are invalid.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "encoded sketch is truncated"),
            Self::Malformed(what) => write!(f, "malformed encoded sketch: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_INF_RUN: u8 = 0;
const TAG_LITERALS: u8 = 1;

/// Encode an age matrix: header `(m: u32, l: u8)`, then a sequence of
/// `(tag, len: u16, [payload])` chunks — tag 0 is a run of ∞ cells, tag 1
/// is a literal run of finite ages.
///
/// Owned-cell bookkeeping is *not* encoded: a receiver merges the ages; it
/// never inherits sourcing duties (Fig. 5's exchange sends counters only).
pub fn encode_ages(m: &AgeMatrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + m.wire_bytes() / 4);
    encode_ages_into(m, &mut out);
    out
}

/// [`encode_ages`] appending into a caller-provided buffer (not cleared),
/// so per-message encoding on a node runtime reuses one allocation.
///
/// Consults the matrix's version-stamped memo first: repeated encodes of
/// an unmutated snapshot (gossip fan-out, push-pull replies off one
/// `Arc`) copy the cached payload instead of re-running the encoder.
pub fn encode_ages_into(m: &AgeMatrix, out: &mut Vec<u8>) {
    let version = m.version();
    {
        let slot = m.encode_cache().lock().unwrap();
        if slot.version == version {
            if let Some(bytes) = &slot.bytes {
                out.extend_from_slice(bytes);
                return;
            }
        }
    }
    // Miss: materialize the eager byte view once, encode it, memoize.
    let mut cells = Vec::with_capacity(m.wire_bytes());
    m.dump_ages(&mut cells);
    let mut built = Vec::with_capacity(16 + cells.len() / 4);
    built.extend_from_slice(&m.num_bins().to_le_bytes());
    built.push(m.width());
    for (start, len, inf) in age_runs(&cells) {
        if inf {
            built.push(TAG_INF_RUN);
            built.extend_from_slice(&(len as u16).to_le_bytes());
        } else {
            built.push(TAG_LITERALS);
            built.extend_from_slice(&(len as u16).to_le_bytes());
            built.extend_from_slice(&cells[start..start + len]);
        }
    }
    out.extend_from_slice(&built);
    *m.encode_cache().lock().unwrap() =
        EncodeSlot { version, len: built.len(), bytes: Some(Arc::new(built)) };
}

/// The run decomposition both [`encode_ages_into`] and
/// [`encoded_len_ages`] consume: maximal `(start, len, is_inf)` runs of
/// same-kind cells, capped at `u16::MAX` so the length always fits the
/// chunk header. One definition, so encoder and size pass cannot drift.
fn age_runs(cells: &[u8]) -> impl Iterator<Item = (usize, usize, bool)> + '_ {
    let mut i = 0usize;
    std::iter::from_fn(move || {
        if i >= cells.len() {
            return None;
        }
        let inf = cells[i] == INF_AGE;
        let start = i;
        while i < cells.len() && (cells[i] == INF_AGE) == inf && i - start < usize::from(u16::MAX) {
            i += 1;
        }
        Some((start, i - start, inf))
    })
}

/// Decode an age matrix previously produced by [`encode_ages`]. The result
/// has no owned cells (it is a peer's view, to be min-merged).
pub fn decode_ages(bytes: &[u8]) -> Result<AgeMatrix, CodecError> {
    if bytes.len() < 5 {
        return Err(CodecError::Truncated);
    }
    let m = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let l = bytes[4];
    if !m.is_power_of_two() || l == 0 || l > crate::fm::MAX_WIDTH {
        return Err(CodecError::Malformed("invalid geometry header"));
    }
    let total = (m as usize) * (usize::from(l) + 1);
    // Every 3-byte chunk contributes at most u16::MAX cells, so a header
    // claiming more geometry than the payload could possibly encode is
    // malformed — reject it *before* reserving `total` cells, or arbitrary
    // input could demand a multi-gigabyte allocation (abort, not `Err`).
    let max_cells = ((bytes.len() - 5) / 3 + 1).saturating_mul(usize::from(u16::MAX));
    if total > max_cells {
        return Err(CodecError::Malformed("geometry exceeds payload capacity"));
    }
    let mut cells = Vec::with_capacity(total);
    let mut pos = 5usize;
    while pos < bytes.len() {
        let tag = bytes[pos];
        pos += 1;
        if pos + 2 > bytes.len() {
            return Err(CodecError::Truncated);
        }
        let len = usize::from(u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("2 bytes")));
        pos += 2;
        match tag {
            TAG_INF_RUN => cells.resize(cells.len() + len, INF_AGE),
            TAG_LITERALS => {
                if pos + len > bytes.len() {
                    return Err(CodecError::Truncated);
                }
                if bytes[pos..pos + len].contains(&INF_AGE) {
                    return Err(CodecError::Malformed("literal run contains the INF sentinel"));
                }
                cells.extend_from_slice(&bytes[pos..pos + len]);
                pos += len;
            }
            _ => return Err(CodecError::Malformed("unknown chunk tag")),
        }
        if cells.len() > total {
            return Err(CodecError::Malformed("payload exceeds geometry"));
        }
    }
    if cells.len() != total {
        return Err(CodecError::Truncated);
    }
    let mut out = AgeMatrix::new(m, l);
    out.load_ages(&cells);
    Ok(out)
}

/// Encoded size without materializing the payload (bandwidth accounting,
/// `wire = "measured"` lockstep metering): one streaming pass over the
/// same run decomposition the encoder uses, memoized in the same
/// version-stamped slot so re-probing an unmutated snapshot is O(1).
pub fn encoded_len_ages(m: &AgeMatrix) -> usize {
    let version = m.version();
    {
        let slot = m.encode_cache().lock().unwrap();
        if slot.version == version && slot.len != 0 {
            return slot.len;
        }
    }
    let mut cells = Vec::with_capacity(m.wire_bytes());
    m.dump_ages(&mut cells);
    let len =
        5 + age_runs(&cells).map(|(_, len, inf)| 3 + if inf { 0 } else { len }).sum::<usize>();
    let mut slot = m.encode_cache().lock().unwrap();
    if slot.version == version {
        slot.len = len;
    } else {
        *slot = EncodeSlot { version, len, bytes: None };
    }
    len
}

/// Encode a PCSA sketch: header `(m: u32, l: u8)`, then each bin's
/// `L + 1`-bit register packed little-endian into ⌈(L+1)/8⌉ bytes.
pub fn encode_pcsa(p: &Pcsa) -> Vec<u8> {
    let bytes_per_bin = (usize::from(p.width()) + 1).div_ceil(8);
    let mut out = Vec::with_capacity(5 + p.bins().len() * bytes_per_bin);
    encode_pcsa_into(p, &mut out);
    out
}

/// [`encode_pcsa`] appending into a caller-provided buffer (not cleared).
/// Memoized per [`Pcsa::version`], like [`encode_ages_into`].
pub fn encode_pcsa_into(p: &Pcsa, out: &mut Vec<u8>) {
    let version = p.version();
    {
        let slot = p.encode_cache().lock().unwrap();
        if slot.version == version {
            if let Some(bytes) = &slot.bytes {
                out.extend_from_slice(bytes);
                return;
            }
        }
    }
    let bytes_per_bin = (usize::from(p.width()) + 1).div_ceil(8);
    let mut built = Vec::with_capacity(5 + p.bins().len() * bytes_per_bin);
    built.extend_from_slice(&p.num_bins().to_le_bytes());
    built.push(p.width());
    for bin in p.bins() {
        built.extend_from_slice(&bin.bits().to_le_bytes()[..bytes_per_bin]);
    }
    out.extend_from_slice(&built);
    *p.encode_cache().lock().unwrap() =
        EncodeSlot { version, len: built.len(), bytes: Some(Arc::new(built)) };
}

/// Decode a PCSA sketch previously produced by [`encode_pcsa`].
pub fn decode_pcsa(bytes: &[u8]) -> Result<Pcsa, CodecError> {
    if bytes.len() < 5 {
        return Err(CodecError::Truncated);
    }
    let m = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let l = bytes[4];
    if !m.is_power_of_two() || l == 0 || l > crate::fm::MAX_WIDTH {
        return Err(CodecError::Malformed("invalid geometry header"));
    }
    let bytes_per_bin = (usize::from(l) + 1).div_ceil(8);
    let expected = 5 + m as usize * bytes_per_bin;
    if bytes.len() != expected {
        return Err(CodecError::Malformed("payload length mismatch"));
    }
    let mut p = Pcsa::new(m, l);
    let mask: u64 = if usize::from(l) + 1 >= 64 { u64::MAX } else { (1u64 << (l + 1)) - 1 };
    for (bin, chunk) in bytes[5..].chunks_exact(bytes_per_bin).enumerate() {
        let mut raw = [0u8; 8];
        raw[..bytes_per_bin].copy_from_slice(chunk);
        let bits = u64::from_le_bytes(raw) & mask;
        for k in 0..=l {
            if bits & (1 << k) != 0 {
                p.set_cell(bin as u32, k);
            }
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::Cutoff;
    use crate::hash::SplitMix64;

    fn sample_matrix(n: u64, ticks: u8) -> AgeMatrix {
        let h = SplitMix64::new(3);
        let mut m = AgeMatrix::new(64, 24);
        for id in 0..n {
            m.claim_id(&h, id);
        }
        m.release_all();
        for _ in 0..ticks {
            m.tick();
        }
        m
    }

    #[test]
    fn ages_roundtrip_exactly() {
        for (n, ticks) in [(0u64, 0u8), (1, 0), (100, 3), (5_000, 10), (5_000, 200)] {
            let m = sample_matrix(n, ticks);
            let decoded = decode_ages(&encode_ages(&m)).unwrap();
            for bin in 0..m.num_bins() {
                for k in 0..=m.width() {
                    assert_eq!(decoded.age(bin, k), m.age(bin, k), "cell ({bin}, {k})");
                }
            }
            // Bit views (the thing estimates read) agree too.
            assert_eq!(
                decoded.bit_view(&Cutoff::paper_uniform()),
                m.bit_view(&Cutoff::paper_uniform())
            );
        }
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for (n, ticks) in [(0u64, 0u8), (1, 0), (100, 3), (5_000, 10), (5_000, 200)] {
            let m = sample_matrix(n, ticks);
            assert_eq!(encoded_len_ages(&m), encode_ages(&m).len(), "n={n} ticks={ticks}");
        }
    }

    #[test]
    fn encode_into_appends_without_clearing() {
        let m = sample_matrix(64, 2);
        let mut buf = vec![0xAA, 0xBB];
        encode_ages_into(&m, &mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(&buf[2..], encode_ages(&m).as_slice());
    }

    #[test]
    fn encoding_compresses_sparse_and_converged_matrices() {
        let empty = AgeMatrix::new(64, 24);
        let raw = empty.wire_bytes();
        let enc = encoded_len_ages(&empty);
        assert!(enc < raw / 10, "empty matrix should collapse: {enc} vs {raw}");

        let converged = sample_matrix(5_000, 5);
        let enc = encoded_len_ages(&converged);
        assert!(
            enc < converged.wire_bytes(),
            "converged matrix should still shrink: {enc} vs {}",
            converged.wire_bytes()
        );
    }

    #[test]
    fn pcsa_roundtrip_exactly() {
        let h = SplitMix64::new(4);
        for n in [0u64, 1, 50, 20_000] {
            let mut p = Pcsa::new(64, 24);
            for id in 0..n {
                p.insert(&h, id);
            }
            let decoded = decode_pcsa(&encode_pcsa(&p)).unwrap();
            assert_eq!(decoded, p);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_ages(&[]), Err(CodecError::Truncated));
        assert_eq!(decode_ages(&[1, 2, 3]), Err(CodecError::Truncated));
        // bad geometry: m = 3 not a power of two
        let mut bad = 3u32.to_le_bytes().to_vec();
        bad.push(24);
        assert!(matches!(decode_ages(&bad), Err(CodecError::Malformed(_))));
        // truncated mid-chunk
        let m = sample_matrix(100, 2);
        let enc = encode_ages(&m);
        assert!(decode_ages(&enc[..enc.len() - 3]).is_err());
        // pcsa length mismatch
        let p = Pcsa::new(16, 24);
        let mut enc = encode_pcsa(&p);
        enc.pop();
        assert!(decode_pcsa(&enc).is_err());
    }

    #[test]
    fn encode_memo_is_stable_and_invalidated_by_mutation() {
        let mut m = sample_matrix(500, 4);
        let first = encode_ages(&m);
        // Second encode is served from the memo — bytes identical.
        assert_eq!(encode_ages(&m), first);
        // A length-only probe agrees with the cached payload.
        assert_eq!(encoded_len_ages(&m), first.len());
        // Any mutation must invalidate: the next encode reflects it.
        m.tick();
        let after = encode_ages(&m);
        assert_ne!(after, first, "tick must invalidate the encode memo");
        assert_eq!(decode_ages(&after).unwrap().age(0, 0), m.age(0, 0));
    }

    #[test]
    fn length_probe_then_encode_agree() {
        // encoded_len first (fills a bytes-less memo), then encode must
        // still produce the real payload at the same length.
        let m = sample_matrix(200, 2);
        let len = encoded_len_ages(&m);
        let enc = encode_ages(&m);
        assert_eq!(enc.len(), len);
        assert!(decode_ages(&enc).is_ok());
    }

    #[test]
    fn pcsa_encode_memo_matches_fresh_encoding() {
        let h = SplitMix64::new(11);
        let mut p = Pcsa::new(32, 24);
        for id in 0..300u64 {
            p.insert(&h, id);
        }
        let first = encode_pcsa(&p);
        assert_eq!(encode_pcsa(&p), first);
        p.insert(&h, 10_000);
        // Clone starts cold: its fresh encode must equal the mutated
        // original's (memo cannot leak stale bytes through clones).
        assert_eq!(encode_pcsa(&p.clone()), encode_pcsa(&p));
    }

    #[test]
    fn decoded_matrix_has_no_owned_cells() {
        let h = SplitMix64::new(5);
        let mut m = AgeMatrix::new(16, 16);
        m.claim_id(&h, 1);
        let decoded = decode_ages(&encode_ages(&m)).unwrap();
        assert_eq!(decoded.owned_cells(), 0, "sourcing duties never transfer over the wire");
        // ...but the age-0 cell is still present for min-merging.
        assert_eq!(decoded.finite_cells().count(), 1);
    }
}
