//! Probabilistic Counting with Stochastic Averaging (PCSA).
//!
//! One FM sketch has a standard deviation of more than one binary order of
//! magnitude. FM85's fix — used verbatim by the paper — is *stochastic
//! averaging*: deterministically shard objects into `m` bins, keep one
//! sketch per bin, and average the per-bin run lengths:
//!
//! ```text
//! n̂ = (m / φ) · 2^{ (1/m) Σ_j R(A_j) }      relative error ≈ 0.78/√m
//! ```
//!
//! The sharding is part of the hash, so PCSA keeps both gossip-critical
//! properties of the base sketch: OR-decomposability and duplicate
//! insensitivity.

use crate::age::EncodeSlot;
use crate::estimate;
use crate::fm::FmSketch;
use crate::hash::Hash64;
use crate::rho::bin_and_rho;
use std::sync::Mutex;

/// A binned FM sketch (PCSA).
///
/// Like [`crate::age::AgeMatrix`], the sketch carries a mutation version
/// keying the codec's per-snapshot encode memo, so an `Arc<Pcsa>` fanned
/// to many partners is serialized once.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct Pcsa {
    bins: Vec<FmSketch>,
    l: u8,
    version: u64,
    cache: Mutex<EncodeSlot>,
}

impl Clone for Pcsa {
    fn clone(&self) -> Self {
        Self {
            bins: self.bins.clone(),
            l: self.l,
            version: self.version,
            cache: Mutex::new(EncodeSlot::default()),
        }
    }
}

impl PartialEq for Pcsa {
    fn eq(&self, other: &Self) -> bool {
        self.l == other.l && self.bins == other.bins
    }
}

impl Eq for Pcsa {}

impl Pcsa {
    /// Empty PCSA with `m` bins (power of two) of width `l` bits each.
    ///
    /// # Panics
    /// Panics if `m` is not a power of two or `l` is out of range.
    pub fn new(m: u32, l: u8) -> Self {
        assert!(m.is_power_of_two() && m >= 1, "bin count must be a power of two");
        Self {
            bins: vec![FmSketch::new(l); m as usize],
            l,
            version: 1,
            cache: Mutex::new(EncodeSlot::default()),
        }
    }

    /// Mutation version; see [`crate::age::AgeMatrix::version`].
    pub fn version(&self) -> u64 {
        self.version
    }

    pub(crate) fn encode_cache(&self) -> &Mutex<EncodeSlot> {
        &self.cache
    }

    #[inline]
    fn bump(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Number of bins `m`.
    pub fn num_bins(&self) -> u32 {
        self.bins.len() as u32
    }

    /// Register width `L`.
    pub fn width(&self) -> u8 {
        self.l
    }

    /// Access the per-bin sketches.
    pub fn bins(&self) -> &[FmSketch] {
        &self.bins
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(FmSketch::is_empty)
    }

    /// Insert an object identifier: the hash picks both bin and register bit.
    #[inline]
    pub fn insert<H: Hash64>(&mut self, hasher: &H, id: u64) {
        let (bin, k) = self.cell_for(hasher, id);
        self.bins[bin as usize].set_bit(k);
        self.bump();
    }

    /// The `(bin, bit)` cell that `id` occupies — exposed so the age matrix
    /// can claim the *same* cell an OR-sketch would set.
    #[inline]
    pub fn cell_for<H: Hash64>(&self, hasher: &H, id: u64) -> (u32, u8) {
        bin_and_rho(hasher.hash_u64(id), self.num_bins(), self.l)
    }

    /// Set a cell directly.
    #[inline]
    pub fn set_cell(&mut self, bin: u32, k: u8) {
        self.bins[bin as usize].set_bit(k);
        self.bump();
    }

    /// OR-merge another PCSA into this one.
    ///
    /// # Panics
    /// Panics on geometry mismatch (different `m` or `L`).
    pub fn merge(&mut self, other: &Pcsa) {
        assert_eq!(self.l, other.l, "width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin-count mismatch");
        // Geometry is uniform across bins (checked above), so the per-bin
        // loop is a straight word-wise OR with no per-element asserts.
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            a.or_bits_unchecked(b.bits());
        }
        self.bump();
    }

    /// Mean run length `(1/m) Σ R(A_j)` across bins.
    pub fn mean_r(&self) -> f64 {
        let sum: u32 = self.bins.iter().map(|b| u32::from(b.r())).sum();
        f64::from(sum) / self.bins.len() as f64
    }

    /// Cardinality estimate `(m/φ)·2^{mean R}`.
    ///
    /// Returns 0.0 for an empty sketch: FM85's estimator is biased for
    /// small `n` anyway and gossip protocols treat "no bits set" as an
    /// empty network.
    pub fn estimate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        estimate::estimate_from_mean_r(self.num_bins(), self.mean_r())
    }

    /// Serialized wire size in bytes (used by the simulator's bandwidth
    /// accounting): one `L+1`-bit register per bin, byte-padded.
    pub fn wire_bytes(&self) -> usize {
        let bits_per_bin = usize::from(self.l) + 1;
        self.bins.len() * bits_per_bin.div_ceil(8)
    }

    /// Clear all bins.
    pub fn clear(&mut self) {
        for b in &mut self.bins {
            b.clear();
        }
        self.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SplitMix64;

    fn filled(n: u64, m: u32, seed: u64) -> Pcsa {
        let h = SplitMix64::new(seed);
        let mut p = Pcsa::new(m, 32);
        for i in 0..n {
            p.insert(&h, i);
        }
        p
    }

    #[test]
    fn empty_estimate_is_zero() {
        assert_eq!(Pcsa::new(64, 24).estimate(), 0.0);
    }

    #[test]
    fn estimate_within_expected_error_64_bins() {
        // 64 bins -> expected relative error ~9.7%. Allow 3 sigma.
        for (seed, n) in [(1u64, 10_000u64), (2, 50_000), (3, 100_000)] {
            let p = filled(n, 64, seed);
            let est = p.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 3.0 * estimate::expected_error(64), "n={n} est={est:.0} rel={rel:.3}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let h = SplitMix64::new(9);
        let mut a = Pcsa::new(16, 24);
        let mut b = Pcsa::new(16, 24);
        let mut union = Pcsa::new(16, 24);
        for i in 0..5_000u64 {
            a.insert(&h, i);
            union.insert(&h, i);
        }
        for i in 2_500..7_500u64 {
            b.insert(&h, i);
            union.insert(&h, i);
        }
        a.merge(&b);
        assert_eq!(a, union, "merge of overlapping sketches must equal the union sketch");
    }

    #[test]
    fn merge_is_idempotent() {
        let a = filled(1000, 16, 4);
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn wire_bytes_matches_geometry() {
        let p = Pcsa::new(64, 23); // 24 bits per bin -> 3 bytes
        assert_eq!(p.wire_bytes(), 64 * 3);
    }

    #[test]
    fn estimate_is_monotone_under_merge() {
        let a = filled(2_000, 64, 5);
        let b = filled(2_000, 64, 6); // different hashers simulate disjoint id spaces
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.estimate() >= a.estimate());
        assert!(merged.estimate() >= b.estimate());
    }
}
