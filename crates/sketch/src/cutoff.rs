//! Bit-expiry cutoff policies for the age matrix.
//!
//! Count-Sketch-Reset declares bit `k` *live* iff its age counter is at most
//! `f(k)`. The paper derives `f(k) ≈ 7 + k/4` for uniform gossip
//! experimentally (Fig. 6): the age of a bit is bounded by the gossip
//! propagation time from its nearest source, and the number of sources of
//! bit `k` halves with each `k`, adding a constant number of propagation
//! rounds per halving — hence a cutoff *linear in k* and **agnostic to the
//! network size** (§IV-A).

use serde::{Deserialize, Serialize};

/// When is an aged bit still considered live?
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Cutoff {
    /// `f(k) = base + slope·k`. The paper's uniform-gossip cutoff is
    /// `base = 7`, `slope = 1/4`.
    Linear {
        /// Constant term: the expected full-network propagation time of a
        /// message with many sources.
        base: f64,
        /// Per-index growth: extra rounds needed as the expected number of
        /// sources halves with each bit index.
        slope: f64,
    },
    /// No expiry: every bit that has ever been sourced stays live. This is
    /// exactly the static Sketch-Count behaviour ("propagation limiting
    /// off" in Fig. 9) and is the baseline the reset variant is compared
    /// against.
    Infinite,
}

impl Cutoff {
    /// The paper's uniform-gossip cutoff `f(k) = 7 + k/4`.
    pub const fn paper_uniform() -> Self {
        Cutoff::Linear { base: 7.0, slope: 0.25 }
    }

    /// A deliberately loose cutoff (twice the paper's), used as the "slow
    /// reversion" line in Fig. 11's dynamic-sum panels: bits take roughly
    /// twice as long to expire, trading healing speed for stability in
    /// poorly connected moments.
    pub const fn slow() -> Self {
        Cutoff::Linear { base: 14.0, slope: 0.5 }
    }

    /// Scale a linear cutoff by `factor` (ablation benches sweep this).
    /// Scaling [`Cutoff::Infinite`] returns it unchanged.
    pub fn scaled(self, factor: f64) -> Self {
        match self {
            Cutoff::Linear { base, slope } => {
                Cutoff::Linear { base: base * factor, slope: slope * factor }
            }
            Cutoff::Infinite => Cutoff::Infinite,
        }
    }

    /// The maximum age at which bit `k` is still live, or `None` when bits
    /// never expire.
    #[inline]
    pub fn threshold(&self, k: u8) -> Option<f64> {
        match *self {
            Cutoff::Linear { base, slope } => Some(base + slope * f64::from(k)),
            Cutoff::Infinite => None,
        }
    }

    /// Is a bit of index `k` with the given `age` live? `age` must already
    /// be finite (the age matrix filters its ∞ sentinel before asking).
    #[inline]
    pub fn admits(&self, k: u8, age: u32) -> bool {
        match self.threshold(k) {
            Some(t) => f64::from(age) <= t,
            None => true,
        }
    }
}

impl Default for Cutoff {
    fn default() -> Self {
        Self::paper_uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = Cutoff::paper_uniform();
        assert_eq!(c.threshold(0), Some(7.0));
        assert_eq!(c.threshold(4), Some(8.0));
        assert_eq!(c.threshold(20), Some(12.0));
    }

    #[test]
    fn admits_respects_threshold() {
        let c = Cutoff::paper_uniform();
        assert!(c.admits(0, 7));
        assert!(!c.admits(0, 8));
        assert!(c.admits(8, 9)); // threshold 9.0
        assert!(!c.admits(8, 10));
    }

    #[test]
    fn infinite_admits_everything_finite() {
        let c = Cutoff::Infinite;
        assert!(c.admits(0, 0));
        assert!(c.admits(17, 1_000_000));
        assert_eq!(c.threshold(5), None);
    }

    #[test]
    fn slow_is_twice_paper() {
        let slow = Cutoff::slow();
        let paper = Cutoff::paper_uniform();
        for k in [0u8, 3, 9, 17] {
            assert!((slow.threshold(k).unwrap() - 2.0 * paper.threshold(k).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn scaled_infinite_is_noop() {
        assert_eq!(Cutoff::Infinite.scaled(3.0), Cutoff::Infinite);
    }
}
