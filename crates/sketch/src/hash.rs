//! Deterministic 64-bit hashing.
//!
//! Flajolet–Martin sketches only require a hash whose output bits are
//! uniformly distributed and independent of the input structure; full
//! cryptographic strength (which the 1985 paper suggested for convenience)
//! is unnecessary. We ship two avalanche hashers implemented in-tree so the
//! crate stays dependency-free, and verify the induced geometric ρ
//! distribution in `rho::tests`.
//!
//! Both hashers are seeded: two sketches built with the same seed are
//! mergeable (they place a given identifier in the same cell); different
//! seeds give independent sketch instances, which experiments use to average
//! across trials.

/// A seeded, deterministic 64 → 64 bit hash function.
///
/// Implementations must be pure: `hash_u64(x)` always returns the same value
/// for the same `(seed, x)` pair. This is what makes sketches built on
/// different hosts mergeable.
pub trait Hash64 {
    /// Hash a 64-bit identifier.
    fn hash_u64(&self, x: u64) -> u64;

    /// Hash a pair of identifiers (e.g. `(host, item-index)` for
    /// multi-insertion summation) into a single well-mixed word.
    fn hash_pair(&self, a: u64, b: u64) -> u64 {
        // Mix `b` in with an odd multiplier before the main avalanche so the
        // pair (a, b) and (b, a) land on different cells.
        self.hash_u64(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
    }

    /// Hash a byte slice. The default implementation runs FNV-1a and then
    /// finishes with the full 64-bit avalanche of `hash_u64`.
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash_u64(h)
    }
}

/// The SplitMix64 finalizer (Steele, Lea, Flood 2014), used as a stateless
/// seeded hash. This is the same mixer `rand` uses to seed generators; its
/// avalanche behaviour is well studied (every input bit flips every output
/// bit with probability ≈ 1/2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    seed: u64,
}

impl SplitMix64 {
    /// Create a hasher with the given seed. Two hashers with the same seed
    /// are interchangeable.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this hasher was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Stateless SplitMix64 mix of a single word (seedless helper).
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Hash64 for SplitMix64 {
    #[inline]
    fn hash_u64(&self, x: u64) -> u64 {
        // Fold the seed in before mixing; the golden-ratio increment keeps
        // seed = 0 well-behaved.
        splitmix64(x ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// An xxHash64-style finalizer: a second, structurally different avalanche
/// function. Experiments that want hash-independence checks (did a result
/// depend on SplitMix64 specifically?) swap this in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XxLike64 {
    seed: u64,
}

impl XxLike64 {
    /// Create a hasher with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this hasher was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for XxLike64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Hash64 for XxLike64 {
    #[inline]
    fn hash_u64(&self, x: u64) -> u64 {
        const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
        const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
        const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
        let mut h = self
            .seed
            .wrapping_add(PRIME64_1)
            .wrapping_add(x.wrapping_mul(PRIME64_2).rotate_left(31).wrapping_mul(PRIME64_1));
        h = (h ^ (h >> 33)).wrapping_mul(PRIME64_2);
        h = (h ^ (h >> 29)).wrapping_mul(PRIME64_3);
        h ^ (h >> 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let h = SplitMix64::new(42);
        assert_eq!(h.hash_u64(7), h.hash_u64(7));
        assert_eq!(SplitMix64::new(42).hash_u64(7), h.hash_u64(7));
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = SplitMix64::new(1);
        let b = SplitMix64::new(2);
        let same = (0..1000).filter(|&i| a.hash_u64(i) == b.hash_u64(i)).count();
        assert_eq!(same, 0, "independent seeds should not collide on small inputs");
    }

    #[test]
    fn xxlike_differs_from_splitmix() {
        let a = SplitMix64::new(9);
        let b = XxLike64::new(9);
        let same = (0..1000).filter(|&i| a.hash_u64(i) == b.hash_u64(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        let h = SplitMix64::new(3);
        assert_ne!(h.hash_pair(1, 2), h.hash_pair(2, 1));
    }

    #[test]
    fn hash_bytes_matches_across_instances() {
        let h1 = XxLike64::new(5);
        let h2 = XxLike64::new(5);
        assert_eq!(h1.hash_bytes(b"hello"), h2.hash_bytes(b"hello"));
        assert_ne!(h1.hash_bytes(b"hello"), h1.hash_bytes(b"hellp"));
    }

    /// Cheap avalanche sanity check: flipping one input bit should flip
    /// roughly half the output bits on average.
    #[test]
    fn avalanche_quality() {
        for hasher in [SplitMix64::new(0x1234), SplitMix64::new(0)] {
            let mut total_flips = 0u32;
            let trials = 256u64;
            for x in 0..trials {
                let base = hasher.hash_u64(x);
                for bit in 0..64 {
                    let flipped = hasher.hash_u64(x ^ (1 << bit));
                    total_flips += (base ^ flipped).count_ones();
                }
            }
            let avg = f64::from(total_flips) / (trials as f64 * 64.0);
            assert!(
                (28.0..=36.0).contains(&avg),
                "average output-bit flips per input-bit flip was {avg}, expected ≈32"
            );
        }
    }
}
