//! Estimator constants and error bounds shared by all sketch variants.

/// Flajolet–Martin's magic constant φ ≈ 0.77351.
///
/// FM85 prove `E[R] ≈ log2(φ·n)` for a single sketch, so the point estimate
/// of `n` from an observed run length `R` is `2^R / φ`.
pub const PHI: f64 = 0.77351;

/// Small-cardinality correction exponent (Scheuermann & Mauve 2007).
const SMALL_N_KAPPA: f64 = 1.75;

/// Estimate cardinality from the mean run length across `m` bins:
/// `n̂ = (m/φ) · (2^{mean R} − 2^{−1.75·mean R})`.
///
/// The subtracted term is Scheuermann & Mauve's standard correction for
/// FM85's small-cardinality bias (PCSA overestimates badly when `n/m ≲ 10`;
/// the paper's own experiments sidestep the regime by giving each host 100
/// identifiers, but a library must behave at all loads). The correction
/// vanishes exponentially for large `mean R`, leaving the asymptotic FM85
/// estimator untouched.
///
/// With `m = 1` this degenerates to the (corrected) single-sketch estimator.
#[inline]
pub fn estimate_from_mean_r(m: u32, mean_r: f64) -> f64 {
    (f64::from(m) / PHI) * (mean_r.exp2() - (-SMALL_N_KAPPA * mean_r).exp2())
}

thread_local! {
    /// Lazily filled estimate table for one sketch geometry `(m, L)`: the
    /// live-run sum is an integer in `0..=m·L`, so the per-round estimate
    /// the engine reads from every host becomes a table load instead of
    /// two `exp2` calls. Entries are produced by [`estimate_from_mean_r`]
    /// itself, so the cached and direct paths are bit-identical.
    static RUN_SUM_TABLE: std::cell::RefCell<(u32, u8, Vec<f64>)> =
        const { std::cell::RefCell::new((0, 0, Vec::new())) };
}

/// [`estimate_from_mean_r`] addressed by the integer live-run sum
/// `Σ_bins min(R, L)` (i.e. `mean_r = sum / m`), memoized per geometry in
/// a thread-local table. Changing geometry resets the table, so tests
/// mixing sketch sizes stay correct (just uncached across the switch).
pub fn estimate_from_run_sum(m: u32, l: u8, sum: u32) -> f64 {
    RUN_SUM_TABLE.with(|cell| {
        let mut t = cell.borrow_mut();
        if t.0 != m || t.1 != l {
            *t = (m, l, vec![f64::NAN; m as usize * usize::from(l) + 1]);
        }
        let slot = &mut t.2[sum as usize];
        if slot.is_nan() {
            // NaN marks "not yet computed": real entries are finite for
            // every representable sum.
            *slot = estimate_from_mean_r(m, f64::from(sum) / f64::from(m));
        }
        *slot
    })
}

/// FM85's standard-error bound for PCSA with `m` bins: ≈ `0.78 / √m`
/// (relative error of the estimate).
///
/// The paper's §V-B uses 64 bins "for an expected error of 9.7 %" —
/// `expected_error(64) = 0.0975`, matching the paper's figure.
#[inline]
pub fn expected_error(m: u32) -> f64 {
    0.78 / f64::from(m).sqrt()
}

/// Inverse of [`estimate_from_mean_r`]: the mean run length a converged
/// sketch should exhibit for a given cardinality. Used by experiments to
/// size registers (`L` must exceed `expected_r(n, m)` by a safety margin).
#[inline]
pub fn expected_r(n: f64, m: u32) -> f64 {
    (PHI * n / f64::from(m)).max(1.0).log2()
}

/// Pick a register width `L` adequate for counting up to `max_n` items in
/// `m` bins, with eight bits of headroom above the expected boundary.
pub fn width_for(max_n: u64, m: u32) -> u8 {
    let need = expected_r(max_n as f64, m).ceil() as i64 + 8;
    need.clamp(8, i64::from(crate::fm::MAX_WIDTH)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_error_claim_64_bins() {
        // §V-B: "use 64 buckets for an expected error of 9.7%".
        let e = expected_error(64);
        assert!((e - 0.097).abs() < 0.001, "expected_error(64) = {e}");
    }

    #[test]
    fn estimator_roundtrip() {
        // If mean R equals the expected R for n, the estimate returns n
        // (in the asymptotic regime where the small-n correction is
        // negligible, i.e. mean R well above ~4).
        for n in [100.0, 10_000.0, 1_000_000.0] {
            for m in [1u32, 16, 64] {
                let r = expected_r(n, m);
                if r > 4.0 {
                    let est = estimate_from_mean_r(m, r);
                    let ratio = est / n;
                    assert!(
                        (0.99..=1.01).contains(&ratio),
                        "roundtrip failed: n={n} m={m} est={est}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_n_correction_reduces_bias() {
        // At mean R ≈ 0.55 (the n ≈ m regime) the corrected estimate must
        // be well below the raw FM85 value and closer to n.
        let m = 64u32;
        let mean_r = 0.55f64;
        let raw = (f64::from(m) / PHI) * mean_r.exp2();
        let corrected = estimate_from_mean_r(m, mean_r);
        assert!(corrected < raw);
        // n ≈ 64 in this regime: corrected should land within ~40%.
        assert!((corrected - 64.0).abs() / 64.0 < 0.4, "corrected = {corrected}");
    }

    #[test]
    fn width_for_is_monotone_and_sane() {
        assert!(width_for(1_000, 64) < width_for(1_000_000_000, 64));
        // 100k hosts in 64 bins: expected boundary ~ log2(0.77*1562) ≈ 10.2,
        // so width must be comfortably above that but below the u64 cap.
        let w = width_for(100_000, 64);
        assert!((18..=30).contains(&w), "width_for(100k, 64) = {w}");
    }

    #[test]
    fn error_shrinks_with_bins() {
        assert!(expected_error(256) < expected_error(64));
        assert!(expected_error(64) < expected_error(16));
    }
}
