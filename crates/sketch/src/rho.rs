//! The Flajolet–Martin ρ function.
//!
//! `ρ(i)` maps every object to the index of the lowest set bit of its hash,
//! giving the geometric distribution the whole sketch family relies on:
//!
//! ```text
//! P[ρ(i) = k] = 2^-(k+1)      for k < L
//! P[ρ(i) = L] = 2^-L          (the "hash was all zeroes below L" tail)
//! ```
//!
//! The paper (§II-B) uses exactly this canonical definition: "the index of
//! the first nonzero bit of the L-bit hash of i, or the value L in the case
//! that the hash contains only zeroes".

/// ρ of a hashed value: index of the lowest set bit, capped at `l`.
///
/// `l` is the sketch width `L`; a return value of `l` means "no set bit in
/// the first `l` positions" and occupies the final register slot.
#[inline]
pub fn rho(hash: u64, l: u8) -> u8 {
    debug_assert!(l <= 64, "sketch width must fit a 64-bit hash");
    let tz = hash.trailing_zeros() as u8; // 64 when hash == 0
    tz.min(l)
}

/// Split one hash word into a bin index (for stochastic averaging) and a ρ
/// value for that bin's register.
///
/// `m` must be a power of two; the low `log2(m)` bits pick the bin and the
/// remaining bits feed ρ, so bin choice and register position stay
/// independent (FM85 §3.3 does the same with `h mod m` / `h div m`).
#[inline]
pub fn bin_and_rho(hash: u64, m: u32, l: u8) -> (u32, u8) {
    debug_assert!(m.is_power_of_two(), "bin count must be a power of two");
    let bin_bits = m.trailing_zeros();
    let bin = (hash as u32) & (m - 1);
    let rest = hash >> bin_bits;
    (bin, rho(rest, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{Hash64, SplitMix64};

    #[test]
    fn rho_of_odd_is_zero() {
        assert_eq!(rho(1, 32), 0);
        assert_eq!(rho(0b1011, 32), 0);
    }

    #[test]
    fn rho_counts_trailing_zeros() {
        assert_eq!(rho(0b1000, 32), 3);
        assert_eq!(rho(1 << 20, 32), 20);
    }

    #[test]
    fn rho_caps_at_l() {
        assert_eq!(rho(0, 16), 16, "all-zero hash maps to L");
        assert_eq!(rho(1 << 40, 16), 16);
    }

    #[test]
    fn bin_and_rho_ranges() {
        let h = SplitMix64::new(7);
        for i in 0..10_000u64 {
            let (bin, k) = bin_and_rho(h.hash_u64(i), 64, 24);
            assert!(bin < 64);
            assert!(k <= 24);
        }
    }

    /// The induced distribution must be geometric: P[ρ = k] ≈ 2^-(k+1).
    /// With 200k samples, the first few classes have tight expected counts;
    /// we allow ±20 % which a correct implementation passes with huge margin
    /// while an off-by-one (e.g. leading instead of trailing zeros on a
    /// truncated hash) fails immediately.
    #[test]
    fn rho_distribution_is_geometric() {
        let h = SplitMix64::new(0xDEAD_BEEF);
        let n = 200_000u64;
        let mut counts = [0u64; 12];
        for i in 0..n {
            let k = rho(h.hash_u64(i), 32);
            if (k as usize) < counts.len() {
                counts[k as usize] += 1;
            }
        }
        for (k, &c) in counts.iter().enumerate().take(8) {
            let expected = n as f64 / 2f64.powi(k as i32 + 1);
            let ratio = c as f64 / expected;
            assert!(
                (0.8..=1.2).contains(&ratio),
                "P[rho={k}] off: observed {c}, expected {expected:.0}"
            );
        }
    }

    /// Bin selection must be uniform across bins.
    #[test]
    fn bins_are_uniform() {
        let h = SplitMix64::new(11);
        let m = 64u32;
        let n = 64_000u64;
        let mut counts = vec![0u64; m as usize];
        for i in 0..n {
            let (bin, _) = bin_and_rho(h.hash_u64(i), m, 24);
            counts[bin as usize] += 1;
        }
        let expected = (n / u64::from(m)) as f64;
        for (bin, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "bin {bin} count {c} far from expected {expected}"
            );
        }
    }

    /// Bin index and rho must be independent: the rho distribution inside a
    /// single bin should still be geometric.
    #[test]
    fn rho_independent_of_bin() {
        let h = SplitMix64::new(23);
        let mut zero_in_bin0 = 0u64;
        let mut total_in_bin0 = 0u64;
        for i in 0..400_000u64 {
            let (bin, k) = bin_and_rho(h.hash_u64(i), 16, 24);
            if bin == 0 {
                total_in_bin0 += 1;
                if k == 0 {
                    zero_in_bin0 += 1;
                }
            }
        }
        let frac = zero_in_bin0 as f64 / total_in_bin0 as f64;
        assert!((0.45..=0.55).contains(&frac), "P[rho=0 | bin=0] = {frac}, expected 0.5");
    }
}
