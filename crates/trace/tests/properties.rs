//! Property-based tests for the trace toolkit: generator validity over
//! random configurations, format round-trips, and the lattice-like
//! behaviour of the windowed group computation.

use dynagg_trace::event::ContactEvent;
use dynagg_trace::format;
use dynagg_trace::groups::GroupView;
use dynagg_trace::model::{TraceModel, TraceModelConfig, WORKDAY_PROFILE};
use dynagg_trace::timeline::Timeline;
use proptest::prelude::*;

fn arb_events(devices: u16) -> impl Strategy<Value = Vec<ContactEvent>> {
    proptest::collection::vec(
        (0u64..5_000, 1u64..2_000, 0..devices, 0..devices)
            .prop_filter_map("valid event", |(start, dur, a, b)| {
                ContactEvent::new(start, start + dur, a, b).ok()
            }),
        0..60,
    )
}

fn arb_config() -> impl Strategy<Value = TraceModelConfig> {
    (
        2u16..30,
        1u64..72,
        60.0f64..3_600.0,
        0.0f64..0.95,
        2u16..20,
        120.0f64..3_600.0,
        1u16..6,
        0.0f64..=1.0,
    )
        .prop_map(|(devices, hours, gap, grow_p, max_size, dur, communities, bias)| {
            TraceModelConfig {
                devices,
                duration_s: hours * 3600,
                mean_meeting_gap_s: gap,
                grow_p,
                max_meeting_size: max_size,
                mean_meeting_duration_s: dur,
                min_meeting_duration_s: 60,
                communities,
                community_bias: bias,
                diurnal: WORKDAY_PROFILE,
            }
        })
}

proptest! {
    /// The generator always produces structurally valid traces for any
    /// valid configuration.
    #[test]
    fn generator_output_is_well_formed(cfg in arb_config(), seed: u64) {
        let tl = TraceModel::new(cfg, seed).generate();
        prop_assert_eq!(tl.device_count(), cfg.devices);
        prop_assert!(tl.duration() >= cfg.duration_s);
        for e in tl.events() {
            prop_assert!(e.a < e.b);
            prop_assert!(e.b < cfg.devices);
            prop_assert!(e.end > e.start);
            prop_assert!(e.end <= cfg.duration_s);
        }
        // Events sorted by start time.
        for w in tl.events().windows(2) {
            prop_assert!(w[0].start <= w[1].start);
        }
    }

    /// Generation is a pure function of (config, seed).
    #[test]
    fn generator_is_deterministic(cfg in arb_config(), seed: u64) {
        let a = TraceModel::new(cfg, seed).generate();
        let b = TraceModel::new(cfg, seed).generate();
        prop_assert_eq!(a, b);
    }

    /// Text format round-trips arbitrary event sets exactly.
    #[test]
    fn format_roundtrip(events in arb_events(12)) {
        let tl = Timeline::new(12, 10_000, events);
        let text = format::write(&tl);
        let parsed = format::parse(&text).unwrap();
        prop_assert_eq!(parsed, tl);
    }

    /// Groups form a partition of the devices at every queried instant.
    #[test]
    fn groups_partition_devices(events in arb_events(16), t in 0u64..8_000) {
        let tl = Timeline::new(16, 10_000, events);
        let view = GroupView::at(&tl, t, 600);
        let mut seen = [0u8; 16];
        for g in view.groups() {
            prop_assert!(!g.is_empty());
            for &d in g {
                seen[usize::from(d)] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each device in exactly one group");
        // group_of agrees with membership lists.
        for d in 0..16u16 {
            prop_assert!(view.members_of(d).contains(&d));
        }
    }

    /// Widening the window only coarsens the partition: devices grouped
    /// under window w stay grouped under any w' ≥ w (edge sets grow
    /// monotonically with the window).
    #[test]
    fn wider_windows_coarsen_groups(events in arb_events(12), t in 0u64..8_000) {
        let tl = Timeline::new(12, 10_000, events);
        let narrow = GroupView::at(&tl, t, 300);
        let wide = GroupView::at(&tl, t, 1_200);
        for a in 0..12u16 {
            for b in 0..12u16 {
                if narrow.group_of(a) == narrow.group_of(b) {
                    prop_assert_eq!(
                        wide.group_of(a), wide.group_of(b),
                        "devices {} and {} split by widening the window", a, b
                    );
                }
            }
        }
    }

    /// Two devices in contact at time t are always in the same group at t.
    #[test]
    fn active_contacts_imply_same_group(events in arb_events(10), t in 0u64..8_000) {
        let tl = Timeline::new(10, 10_000, events);
        let view = GroupView::at(&tl, t, 600);
        for (a, b) in tl.active_edges(t) {
            prop_assert_eq!(view.group_of(a), view.group_of(b));
        }
    }

    /// Group aggregates broadcast a single value to every member, and the
    /// group-size aggregate matches members_of lengths.
    #[test]
    fn group_aggregate_is_constant_within_groups(
        events in arb_events(10),
        values in proptest::collection::vec(0.0f64..100.0, 10),
        t in 0u64..8_000,
    ) {
        let tl = Timeline::new(10, 10_000, events);
        let view = GroupView::at(&tl, t, 600);
        let means = view.group_aggregate(&values, dynagg_trace::groups::mean);
        let sizes = view.group_aggregate(&[1.0; 10], |xs| xs.iter().sum());
        for d in 0..10u16 {
            for &m in view.members_of(d) {
                prop_assert!((means[usize::from(d)] - means[usize::from(m)]).abs() < 1e-9);
            }
            prop_assert_eq!(sizes[usize::from(d)] as usize, view.group_size(d));
        }
    }

    /// Adjacency queries agree with the event set definitionally.
    #[test]
    fn adjacency_matches_event_intervals(events in arb_events(8), t in 0u64..8_000) {
        let tl = Timeline::new(8, 10_000, events.clone());
        let adj = tl.adjacency_at(t);
        for a in 0..8u16 {
            for b in (a + 1)..8u16 {
                let expected = events
                    .iter()
                    .any(|e| e.edge() == (a, b) && e.active_at(t));
                let listed = adj[usize::from(a)].contains(&b);
                prop_assert_eq!(listed, expected, "edge ({}, {}) at t={}", a, b, t);
                // symmetry
                prop_assert_eq!(adj[usize::from(b)].contains(&a), listed);
            }
        }
    }
}
