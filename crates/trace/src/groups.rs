//! The paper's "nearby" relation (§V): two hosts are nearby at time `t` if
//! a path exists between them over the union of all edges that existed in
//! the last 10 minutes. Groups are the connected components of that union
//! graph, and Fig. 11 reports each host's error *relative to its group's
//! aggregate*.

use crate::event::DeviceId;
use crate::timeline::Timeline;

/// The paper's window: 10 minutes, in seconds.
pub const PAPER_WINDOW_S: u64 = 600;

/// Group assignment at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// `group_of[d]` = index of device `d`'s group.
    group_of: Vec<u32>,
    /// Members of each group, sorted; singleton groups included.
    groups: Vec<Vec<DeviceId>>,
}

impl GroupView {
    /// Compute groups at time `t` from the union of edges in
    /// `[t.saturating_sub(window), t)` plus edges active exactly at `t`.
    pub fn at(timeline: &Timeline, t: u64, window: u64) -> Self {
        let from = t.saturating_sub(window);
        // window_edges is half-open [from, to): use t+1 so contacts starting
        // exactly at t count as "existing".
        let edges = timeline.window_edges(from, t + 1);
        Self::from_edges(timeline.device_count(), &edges)
    }

    /// Compute groups directly from an edge list.
    pub fn from_edges(device_count: u16, edges: &[(DeviceId, DeviceId)]) -> Self {
        let n = usize::from(device_count);
        let mut uf = UnionFind::new(n);
        for &(a, b) in edges {
            uf.union(usize::from(a), usize::from(b));
        }
        let mut root_to_group = vec![u32::MAX; n];
        let mut groups: Vec<Vec<DeviceId>> = Vec::new();
        let mut group_of = vec![0u32; n];
        for (d, slot) in group_of.iter_mut().enumerate() {
            let root = uf.find(d);
            if root_to_group[root] == u32::MAX {
                root_to_group[root] = groups.len() as u32;
                groups.push(Vec::new());
            }
            let g = root_to_group[root];
            *slot = g;
            groups[g as usize].push(d as DeviceId);
        }
        Self { group_of, groups }
    }

    /// The group index of device `d`.
    pub fn group_of(&self, d: DeviceId) -> u32 {
        self.group_of[usize::from(d)]
    }

    /// Members of device `d`'s group (sorted, includes `d`).
    pub fn members_of(&self, d: DeviceId) -> &[DeviceId] {
        &self.groups[self.group_of(d) as usize][..]
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<DeviceId>] {
        &self.groups
    }

    /// Size of device `d`'s group.
    pub fn group_size(&self, d: DeviceId) -> usize {
        self.members_of(d).len()
    }

    /// Mean group size *experienced by a device* (each device weighted
    /// equally — the quantity Fig. 11 plots as "Avg Group Size").
    pub fn mean_experienced_size(&self) -> f64 {
        let n: usize = self.groups.iter().map(Vec::len).sum();
        if n == 0 {
            return 0.0;
        }
        let total: usize = self.groups.iter().map(|g| g.len() * g.len()).sum();
        total as f64 / n as f64
    }

    /// The group-wise aggregate of per-device values, returned per device:
    /// `out[d] = agg(values[m] for m in group(d))`.
    pub fn group_aggregate<F>(&self, values: &[f64], agg: F) -> Vec<f64>
    where
        F: Fn(&[f64]) -> f64,
    {
        let mut out = vec![0.0; values.len()];
        let mut buf = Vec::new();
        for g in &self.groups {
            buf.clear();
            buf.extend(g.iter().map(|&d| values[usize::from(d)]));
            let v = agg(&buf);
            for &d in g {
                out[usize::from(d)] = v;
            }
        }
        out
    }
}

/// Mean of a slice (helper for [`GroupView::group_aggregate`]).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // path compression
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ContactEvent;

    fn tl() -> Timeline {
        Timeline::new(
            6,
            10_000,
            vec![
                ContactEvent::new(0, 100, 0, 1).unwrap(),
                ContactEvent::new(50, 150, 1, 2).unwrap(),
                ContactEvent::new(0, 5_000, 3, 4).unwrap(),
                // device 5 never meets anyone
            ],
        )
    }

    #[test]
    fn components_form_a_partition() {
        let v = GroupView::at(&tl(), 120, PAPER_WINDOW_S);
        let mut seen = [0u32; 6];
        for g in v.groups() {
            for &d in g {
                seen[usize::from(d)] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "every device in exactly one group");
    }

    #[test]
    fn transitive_closure_over_window() {
        // At t=120 the edges (0,1) [ended at 100] and (1,2) are both within
        // the 10-minute window, so {0,1,2} are one group even though 0-1 is
        // no longer active.
        let v = GroupView::at(&tl(), 120, PAPER_WINDOW_S);
        assert_eq!(v.group_of(0), v.group_of(2));
        assert_eq!(v.members_of(0), &[0, 1, 2]);
        assert_eq!(v.members_of(3), &[3, 4]);
        assert_eq!(v.members_of(5), &[5]);
    }

    #[test]
    fn window_expiry_splits_groups() {
        // At t=800 the 0-1 and 1-2 contacts (ended ≤150) left the window.
        let v = GroupView::at(&tl(), 800, PAPER_WINDOW_S);
        assert_ne!(v.group_of(0), v.group_of(1));
        assert_eq!(v.group_size(0), 1);
        // 3-4 still in contact.
        assert_eq!(v.members_of(3), &[3, 4]);
    }

    #[test]
    fn experienced_group_size_weights_devices() {
        // Groups {0,1,2}, {3,4}, {5}: experienced mean = (3·3 + 2·2 + 1)/6.
        let v = GroupView::at(&tl(), 120, PAPER_WINDOW_S);
        assert!((v.mean_experienced_size() - 14.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn group_aggregate_broadcasts_per_group() {
        let v = GroupView::at(&tl(), 120, PAPER_WINDOW_S);
        let values = [10.0, 20.0, 30.0, 100.0, 200.0, 7.0];
        let means = v.group_aggregate(&values, mean);
        assert_eq!(means[0], 20.0);
        assert_eq!(means[1], 20.0);
        assert_eq!(means[2], 20.0);
        assert_eq!(means[3], 150.0);
        assert_eq!(means[4], 150.0);
        assert_eq!(means[5], 7.0);
    }

    #[test]
    fn group_sizes_via_aggregate() {
        let v = GroupView::at(&tl(), 120, PAPER_WINDOW_S);
        let ones = [1.0; 6];
        let sizes = v.group_aggregate(&ones, |xs| xs.iter().sum());
        assert_eq!(sizes[0], 3.0);
        assert_eq!(sizes[3], 2.0);
        assert_eq!(sizes[5], 1.0);
    }
}
