//! Text serialization of contact traces.
//!
//! The format matches the shape of the CRAWDAD Haggle contact lists so the
//! real datasets can be dropped in: one whitespace-separated record per
//! line, `<device-a> <device-b> <start-seconds> <end-seconds>`, `#`
//! comments and blank lines ignored. A header comment records device count
//! and duration; when absent they are inferred from the events.

use crate::event::ContactEvent;
use crate::timeline::Timeline;
use std::fmt::Write as _;

/// Parse errors with line numbers for debuggability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a trace from text.
pub fn parse(text: &str) -> Result<Timeline, ParseError> {
    let mut events = Vec::new();
    let mut declared_devices: Option<u16> = None;
    let mut declared_duration: Option<u64> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Optional metadata comments: "# devices: N", "# duration: S".
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("devices:") {
                declared_devices = v.trim().parse().ok();
            } else if let Some(v) = rest.strip_prefix("duration:") {
                declared_duration = v.trim().parse().ok();
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let mut field = |name: &str| -> Result<u64, ParseError> {
            parts
                .next()
                .ok_or_else(|| ParseError {
                    line: line_no,
                    message: format!("missing field `{name}`"),
                })?
                .parse::<u64>()
                .map_err(|e| ParseError { line: line_no, message: format!("bad `{name}`: {e}") })
        };
        let a = field("device-a")?;
        let b = field("device-b")?;
        let start = field("start")?;
        let end = field("end")?;
        if parts.next().is_some() {
            return Err(ParseError { line: line_no, message: "trailing fields".into() });
        }
        let (a, b) = (
            u16::try_from(a).map_err(|_| ParseError {
                line: line_no,
                message: format!("device id {a} exceeds u16"),
            })?,
            u16::try_from(b).map_err(|_| ParseError {
                line: line_no,
                message: format!("device id {b} exceeds u16"),
            })?,
        );
        let ev = ContactEvent::new(start, end, a, b)
            .map_err(|e| ParseError { line: line_no, message: e.to_string() })?;
        events.push(ev);
    }

    let max_dev = events.iter().map(|e| e.b).max().map_or(0, |d| d + 1);
    let devices = declared_devices.unwrap_or(max_dev).max(max_dev);
    Ok(Timeline::new(devices, declared_duration.unwrap_or(0), events))
}

/// Serialize a trace to the text format (with metadata header).
pub fn write(timeline: &Timeline) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# dynagg contact trace");
    let _ = writeln!(s, "# devices: {}", timeline.device_count());
    let _ = writeln!(s, "# duration: {}", timeline.duration());
    let _ = writeln!(s, "# columns: device-a device-b start-s end-s");
    for e in timeline.events() {
        let _ = writeln!(s, "{} {} {} {}", e.a, e.b, e.start, e.end);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let tl = Timeline::new(
            5,
            800,
            vec![ContactEvent::new(0, 60, 0, 1).unwrap(), ContactEvent::new(30, 90, 2, 4).unwrap()],
        );
        let text = write(&tl);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, tl);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# hello\n\n0 1 10 20\n   \n# devices: 7\n2 3 15 25\n";
        let tl = parse(text).unwrap();
        assert_eq!(tl.events().len(), 2);
        assert_eq!(tl.device_count(), 7);
    }

    #[test]
    fn infers_device_count() {
        let tl = parse("0 9 0 10\n").unwrap();
        assert_eq!(tl.device_count(), 10);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("0 1 10 20\n0 1 bogus 20\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("start"));
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(parse("0 1 10\n").is_err(), "missing field");
        assert!(parse("0 1 10 20 30\n").is_err(), "trailing field");
        assert!(parse("3 3 10 20\n").is_err(), "self contact");
        assert!(parse("0 1 20 10\n").is_err(), "inverted interval");
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let text = "0 1 500 600\n0 1 10 20\n";
        let tl = parse(text).unwrap();
        assert!(tl.events()[0].start <= tl.events()[1].start);
    }
}
