//! Trace statistics: the envelope checks that justify the CRAWDAD
//! substitution, and the "Avg Group Size" series Fig. 11 plots alongside
//! protocol error.

use crate::groups::GroupView;
use crate::timeline::Timeline;
use serde::{Deserialize, Serialize};

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of devices.
    pub devices: u16,
    /// Duration in hours.
    pub hours: f64,
    /// Total contact events.
    pub contacts: usize,
    /// Mean contact duration in seconds.
    pub mean_contact_s: f64,
    /// Maximum of the hourly experienced-group-size series.
    pub peak_group_size: f64,
    /// Mean of the hourly experienced-group-size series.
    pub mean_group_size: f64,
}

/// Experienced group size sampled every `step_s`, averaged per hour.
///
/// "Experienced" weights each *device* equally (a device in a group of 8
/// experiences 8), matching the right-hand axes of Fig. 11.
pub fn hourly_group_size(timeline: &Timeline, window_s: u64, step_s: u64) -> Vec<f64> {
    let hours = (timeline.duration() / 3600) as usize;
    let mut out = Vec::with_capacity(hours);
    for h in 0..hours {
        let start = h as u64 * 3600;
        let mut sum = 0.0;
        let mut samples = 0u32;
        let mut t = start;
        while t < start + 3600 {
            let view = GroupView::at(timeline, t, window_s);
            sum += view.mean_experienced_size();
            samples += 1;
            t += step_s.max(1);
        }
        out.push(sum / f64::from(samples.max(1)));
    }
    out
}

/// Compute the summary statistics of a trace.
pub fn summarize(timeline: &Timeline, window_s: u64) -> TraceStats {
    let contacts = timeline.events().len();
    let mean_contact_s = if contacts == 0 {
        0.0
    } else {
        timeline.events().iter().map(|e| e.duration() as f64).sum::<f64>() / contacts as f64
    };
    let hourly = hourly_group_size(timeline, window_s, 300);
    let peak = hourly.iter().copied().fold(0.0f64, f64::max);
    let mean =
        if hourly.is_empty() { 0.0 } else { hourly.iter().sum::<f64>() / hourly.len() as f64 };
    TraceStats {
        devices: timeline.device_count(),
        hours: timeline.duration() as f64 / 3600.0,
        contacts,
        mean_contact_s,
        peak_group_size: peak,
        mean_group_size: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ContactEvent;

    #[test]
    fn empty_trace_stats() {
        let tl = Timeline::new(4, 7200, vec![]);
        let s = summarize(&tl, 600);
        assert_eq!(s.contacts, 0);
        assert_eq!(s.mean_contact_s, 0.0);
        // all groups are singletons
        assert!((s.peak_group_size - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hourly_series_length_matches_duration() {
        let tl = Timeline::new(4, 5 * 3600, vec![ContactEvent::new(0, 600, 0, 1).unwrap()]);
        let series = hourly_group_size(&tl, 600, 600);
        assert_eq!(series.len(), 5);
        // first hour has a pair; later hours are singleton-only
        assert!(series[0] > series[4]);
        assert!((series[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_reflect_contacts() {
        let tl = Timeline::new(
            3,
            3600,
            vec![
                ContactEvent::new(0, 100, 0, 1).unwrap(),
                ContactEvent::new(0, 300, 1, 2).unwrap(),
            ],
        );
        let s = summarize(&tl, 600);
        assert_eq!(s.contacts, 2);
        assert!((s.mean_contact_s - 200.0).abs() < 1e-9);
        assert_eq!(s.devices, 3);
    }
}
