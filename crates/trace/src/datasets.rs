//! Bundled synthetic datasets shaped like the three Cambridge/Haggle
//! traces the paper evaluates on (Fig. 11).
//!
//! | dataset | paper trace | devices | duration | group-size envelope |
//! |---|---|---|---|---|
//! | 1 | Cambridge lab students (iMote set 1) | 9 | ~90 h | peaks ≈ 5–9 |
//! | 2 | Cambridge lab students (iMote set 2) | 12 | ~120 h | peaks ≈ 8–12 |
//! | 3 | conference attendees (Infocom) | 41 | ~70 h | peaks ≈ 15–25 |
//!
//! The paper's simulation reads only the time-varying adjacency matrix, so
//! matching the device count, duration, diurnal rhythm, and group-size
//! envelope preserves everything Fig. 11 measures (see `DESIGN.md` §5).
//! Real CRAWDAD dumps can be parsed with [`crate::format::parse`] and used
//! in place of these.

use crate::model::{TraceModel, TraceModelConfig, CONFERENCE_PROFILE, WORKDAY_PROFILE};
use crate::timeline::Timeline;

/// Which synthetic Haggle-like dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dataset {
    /// 9 devices, ~90 hours (lab cohort).
    One,
    /// 12 devices, ~120 hours (lab cohort).
    Two,
    /// 41 devices, ~70 hours (conference).
    Three,
}

impl Dataset {
    /// All three datasets, in paper order.
    pub const ALL: [Dataset; 3] = [Dataset::One, Dataset::Two, Dataset::Three];

    /// Parse "1" | "2" | "3".
    pub fn from_index(i: usize) -> Option<Self> {
        match i {
            1 => Some(Self::One),
            2 => Some(Self::Two),
            3 => Some(Self::Three),
            _ => None,
        }
    }

    /// Paper-order index (1-based).
    pub fn index(self) -> usize {
        match self {
            Self::One => 1,
            Self::Two => 2,
            Self::Three => 3,
        }
    }

    /// The generator configuration for this dataset.
    pub fn config(self) -> TraceModelConfig {
        match self {
            // Lab cohort: 9 devices in 3 offices; pairwise-to-small meetings
            // all day; occasional whole-group gatherings.
            Dataset::One => TraceModelConfig {
                devices: 9,
                duration_s: 90 * 3600,
                mean_meeting_gap_s: 420.0,
                grow_p: 0.62,
                max_meeting_size: 9,
                mean_meeting_duration_s: 1500.0,
                min_meeting_duration_s: 120,
                communities: 3,
                community_bias: 0.65,
                diurnal: WORKDAY_PROFILE,
            },
            // Slightly larger cohort, longer trace.
            Dataset::Two => TraceModelConfig {
                devices: 12,
                duration_s: 120 * 3600,
                mean_meeting_gap_s: 380.0,
                grow_p: 0.66,
                max_meeting_size: 12,
                mean_meeting_duration_s: 1500.0,
                min_meeting_duration_s: 120,
                communities: 4,
                community_bias: 0.6,
                diurnal: WORKDAY_PROFILE,
            },
            // Conference: dense sessions, large transient gatherings.
            Dataset::Three => TraceModelConfig {
                devices: 41,
                duration_s: 70 * 3600,
                mean_meeting_gap_s: 300.0,
                grow_p: 0.78,
                max_meeting_size: 18,
                mean_meeting_duration_s: 1500.0,
                min_meeting_duration_s: 300,
                communities: 6,
                community_bias: 0.5,
                diurnal: CONFERENCE_PROFILE,
            },
        }
    }

    /// Generate the dataset's timeline with its canonical seed (fixed so
    /// every experiment run replays the identical trace, like a recorded
    /// dataset would).
    pub fn generate(self) -> Timeline {
        let seed = match self {
            Dataset::One => 0x4841_4747_4c45_0001,   // "HAGGLE" 1
            Dataset::Two => 0x4841_4747_4c45_0002,   // "HAGGLE" 2
            Dataset::Three => 0x4841_4747_4c45_0003, // "HAGGLE" 3
        };
        TraceModel::new(self.config(), seed).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    #[test]
    fn dataset_indices_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_index(d.index()), Some(d));
        }
        assert_eq!(Dataset::from_index(0), None);
        assert_eq!(Dataset::from_index(4), None);
    }

    #[test]
    fn dataset1_matches_envelope() {
        let s = summarize(&Dataset::One.generate(), 600);
        assert_eq!(s.devices, 9);
        assert!((s.hours - 90.0).abs() < 1.0);
        assert!(
            (3.0..=9.0).contains(&s.peak_group_size),
            "dataset 1 peak group size {} outside Fig. 11 envelope",
            s.peak_group_size
        );
    }

    #[test]
    fn dataset2_matches_envelope() {
        let s = summarize(&Dataset::Two.generate(), 600);
        assert_eq!(s.devices, 12);
        assert!((s.hours - 120.0).abs() < 1.0);
        assert!(
            (5.0..=12.0).contains(&s.peak_group_size),
            "dataset 2 peak group size {} outside Fig. 11 envelope",
            s.peak_group_size
        );
    }

    #[test]
    fn dataset3_matches_envelope() {
        let s = summarize(&Dataset::Three.generate(), 600);
        assert_eq!(s.devices, 41);
        assert!((s.hours - 70.0).abs() < 1.0);
        assert!(
            (12.0..=35.0).contains(&s.peak_group_size),
            "dataset 3 peak group size {} outside Fig. 11 envelope",
            s.peak_group_size
        );
    }

    #[test]
    fn generation_is_stable_across_calls() {
        // Canonical seeds: the "recorded dataset" property.
        assert_eq!(Dataset::One.generate(), Dataset::One.generate());
    }
}
