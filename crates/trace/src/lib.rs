//! # dynagg-trace
//!
//! Contact traces for trace-driven gossip simulation (paper §V, Fig. 11).
//!
//! The paper replays the CRAWDAD `cambridge/haggle` iMote traces: several
//! days of pairwise radio contacts among 9–41 devices carried by people.
//! Those traces are not redistributable, so this crate provides:
//!
//! * [`event`]/[`timeline`] — the contact-event data model and efficient
//!   time-indexed adjacency queries,
//! * [`format`][mod@format] — a text parser/writer so real CRAWDAD dumps can be dropped
//!   in unchanged,
//! * [`model`] — a seeded synthetic generator (community meeting process
//!   with a diurnal cycle) whose output matches the statistical envelope
//!   Fig. 11 depends on: small transient groups, minutes-to-hours churn,
//!   day/night rhythm,
//! * [`datasets`] — three bundled configurations shaped like Haggle
//!   datasets 1–3 (9, 12, 41 devices),
//! * [`groups`] — the paper's "nearby" relation: connected components over
//!   the union of edges seen in the last 10 minutes,
//! * [`stats`] — summary statistics (average group size over time, contact
//!   counts) used to sanity-check generated traces against the envelope.
//!
//! See `DESIGN.md` §5 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod event;
pub mod format;
pub mod groups;
pub mod model;
pub mod stats;
pub mod timeline;

pub use event::{ContactEvent, DeviceId};
pub use groups::GroupView;
pub use model::{TraceModel, TraceModelConfig};
pub use timeline::Timeline;
