//! A time-indexed collection of contact events with efficient adjacency
//! queries.
//!
//! Traces are replayed monotonically (simulation time only moves forward),
//! so the timeline exposes a cursor-style API: `active_edges(t)` and
//! `window_edges(from, to)` are served from events sorted by start time
//! with a moving lower bound. Device counts are small (≤ a few hundred) and
//! event counts modest (tens of thousands), which keeps a sorted-vector
//! representation both simple and fast.

use crate::event::{ContactEvent, DeviceId};
use serde::{Deserialize, Serialize};

/// An immutable contact trace: `device_count` devices and a set of events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    device_count: u16,
    duration: u64,
    /// Events sorted by `(start, end, a, b)`.
    events: Vec<ContactEvent>,
}

impl Timeline {
    /// Build a timeline from events. `device_count` must exceed every
    /// endpoint; `duration` is clamped up to cover the last event.
    pub fn new(device_count: u16, duration: u64, mut events: Vec<ContactEvent>) -> Self {
        debug_assert!(
            events.iter().all(|e| e.a < device_count && e.b < device_count),
            "event endpoint out of range"
        );
        events.sort_unstable_by_key(|e| (e.start, e.end, e.a, e.b));
        let last_end = events.iter().map(|e| e.end).max().unwrap_or(0);
        Self { device_count, duration: duration.max(last_end), events }
    }

    /// Number of devices in the trace.
    pub fn device_count(&self) -> u16 {
        self.device_count
    }

    /// Trace duration in seconds.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// All events, sorted by start time.
    pub fn events(&self) -> &[ContactEvent] {
        &self.events
    }

    /// Edges active at time `t` (each reported once, `a < b`).
    pub fn active_edges(&self, t: u64) -> Vec<(DeviceId, DeviceId)> {
        self.events
            .iter()
            .take_while(|e| e.start <= t)
            .filter(|e| e.active_at(t))
            .map(ContactEvent::edge)
            .collect()
    }

    /// Distinct edges overlapping the half-open window `[from, to)` — the
    /// union the paper's 10-minute "nearby" relation is built on.
    pub fn window_edges(&self, from: u64, to: u64) -> Vec<(DeviceId, DeviceId)> {
        let mut edges: Vec<(DeviceId, DeviceId)> = self
            .events
            .iter()
            .take_while(|e| e.start < to)
            .filter(|e| e.overlaps(from, to))
            .map(ContactEvent::edge)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Adjacency lists at time `t`.
    pub fn adjacency_at(&self, t: u64) -> Vec<Vec<DeviceId>> {
        let mut adj = vec![Vec::new(); usize::from(self.device_count)];
        for (a, b) in self.active_edges(t) {
            adj[usize::from(a)].push(b);
            adj[usize::from(b)].push(a);
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        adj
    }

    /// Mean number of *concurrent* contacts per device at time `t`.
    pub fn mean_degree_at(&self, t: u64) -> f64 {
        let edges = self.active_edges(t).len();
        2.0 * edges as f64 / f64::from(self.device_count).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline::new(
            4,
            1000,
            vec![
                ContactEvent::new(0, 100, 0, 1).unwrap(),
                ContactEvent::new(50, 150, 1, 2).unwrap(),
                ContactEvent::new(400, 500, 2, 3).unwrap(),
                // duplicate edge later in time
                ContactEvent::new(600, 700, 0, 1).unwrap(),
            ],
        )
    }

    #[test]
    fn active_edges_respect_intervals() {
        let t = tl();
        assert_eq!(t.active_edges(0), vec![(0, 1)]);
        assert_eq!(t.active_edges(75), vec![(0, 1), (1, 2)]);
        assert_eq!(t.active_edges(120), vec![(1, 2)]);
        assert_eq!(t.active_edges(300), vec![]);
        assert_eq!(t.active_edges(450), vec![(2, 3)]);
    }

    #[test]
    fn window_union_dedups() {
        let t = tl();
        // Window covering both (0,1) occurrences and (1,2).
        let edges = t.window_edges(0, 1000);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
        // Window touching nothing.
        assert!(t.window_edges(200, 390).is_empty());
        // Half-open semantics: event ending exactly at `from` is excluded.
        assert!(t.window_edges(150, 200).is_empty());
        assert_eq!(t.window_edges(149, 200), vec![(1, 2)]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let t = tl();
        let adj = t.adjacency_at(75);
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
        assert!(adj[3].is_empty());
    }

    #[test]
    fn duration_covers_last_event() {
        let t = Timeline::new(2, 10, vec![ContactEvent::new(5, 5000, 0, 1).unwrap()]);
        assert_eq!(t.duration(), 5000);
    }

    #[test]
    fn mean_degree() {
        let t = tl();
        assert!((t.mean_degree_at(75) - 1.0).abs() < 1e-12); // 2 edges, 4 devices
    }
}
