//! Contact events: the atoms of a mobility trace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Device index within one trace (dense, `0..device_count`).
pub type DeviceId = u16;

/// One pairwise radio contact: devices `a` and `b` were in range during
/// `[start, end)` (seconds since trace start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContactEvent {
    /// Contact start, in seconds since trace start (inclusive).
    pub start: u64,
    /// Contact end, in seconds since trace start (exclusive).
    pub end: u64,
    /// One endpoint.
    pub a: DeviceId,
    /// The other endpoint. Events are stored with `a < b`.
    pub b: DeviceId,
}

/// Why a contact event is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventError {
    /// `end <= start`.
    EmptyInterval,
    /// `a == b`.
    SelfContact,
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyInterval => write!(f, "contact interval is empty (end <= start)"),
            Self::SelfContact => write!(f, "contact connects a device to itself"),
        }
    }
}

impl std::error::Error for EventError {}

impl ContactEvent {
    /// Validated constructor; normalizes endpoint order so `a < b`.
    pub fn new(start: u64, end: u64, a: DeviceId, b: DeviceId) -> Result<Self, EventError> {
        if end <= start {
            return Err(EventError::EmptyInterval);
        }
        if a == b {
            return Err(EventError::SelfContact);
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        Ok(Self { start, end, a, b })
    }

    /// Duration of the contact in seconds.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the contact is active at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the contact overlaps the half-open window `[from, to)`.
    pub fn overlaps(&self, from: u64, to: u64) -> bool {
        self.start < to && from < self.end
    }

    /// The `(a, b)` pair as a canonical edge key.
    pub fn edge(&self) -> (DeviceId, DeviceId) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_normalizes_order() {
        let e = ContactEvent::new(10, 20, 5, 2).unwrap();
        assert_eq!((e.a, e.b), (2, 5));
    }

    #[test]
    fn rejects_empty_and_self() {
        assert_eq!(ContactEvent::new(10, 10, 1, 2), Err(EventError::EmptyInterval));
        assert_eq!(ContactEvent::new(10, 5, 1, 2), Err(EventError::EmptyInterval));
        assert_eq!(ContactEvent::new(1, 2, 3, 3), Err(EventError::SelfContact));
    }

    #[test]
    fn activity_and_overlap() {
        let e = ContactEvent::new(100, 200, 0, 1).unwrap();
        assert!(e.active_at(100));
        assert!(e.active_at(199));
        assert!(!e.active_at(200));
        assert!(!e.active_at(99));
        assert!(e.overlaps(150, 160));
        assert!(e.overlaps(0, 101));
        assert!(e.overlaps(199, 300));
        assert!(!e.overlaps(200, 300));
        assert!(!e.overlaps(0, 100));
    }

    #[test]
    fn duration() {
        assert_eq!(ContactEvent::new(5, 65, 0, 1).unwrap().duration(), 60);
    }
}
