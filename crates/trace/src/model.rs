//! Synthetic contact-trace generator — the CRAWDAD substitute.
//!
//! Fig. 11 needs traces with (a) small transient groups whose membership
//! churns on minutes-to-hours scales and (b) a diurnal activity rhythm.
//! This model generates exactly that statistical envelope with a
//! **community meeting process**:
//!
//! * meetings start as a non-homogeneous Poisson process whose intensity
//!   follows a 24-hour profile (people meet during the day, rarely at
//!   night),
//! * each meeting draws a size (2 + geometric, capped) and picks members,
//!   biased toward one "community" (lab-mates meet lab-mates),
//! * meetings last an exponential time (clamped to plausible bounds), and
//!   all member pairs are in radio contact for the meeting's span.
//!
//! Everything is driven by a single seed: the same config + seed always
//! produces the identical trace, so experiments are reproducible. The
//! statistics (`crate::stats`) verify each bundled dataset matches its
//! target group-size envelope.

use crate::event::{ContactEvent, DeviceId};
use crate::timeline::Timeline;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A 24-entry hour-of-day intensity profile.
pub type DiurnalProfile = [f64; 24];

/// A typical workday profile: near-silent nights, busy 9–18h.
pub const WORKDAY_PROFILE: DiurnalProfile = [
    0.05, 0.05, 0.05, 0.05, 0.05, 0.1, 0.2, 0.5, // 00–07
    0.9, 1.0, 1.0, 1.0, 0.8, 0.9, 1.0, 1.0, // 08–15
    0.9, 0.7, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, // 16–23
];

/// A conference profile: intense sessions with coffee-break spikes, active
/// evenings.
pub const CONFERENCE_PROFILE: DiurnalProfile = [
    0.05, 0.05, 0.05, 0.05, 0.05, 0.1, 0.3, 0.6, // 00–07
    1.0, 1.0, 0.9, 1.0, 0.9, 1.0, 1.0, 0.9, // 08–15
    1.0, 0.9, 0.8, 0.7, 0.6, 0.4, 0.2, 0.1, // 16–23
];

/// Parameters of the synthetic meeting process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceModelConfig {
    /// Number of devices.
    pub devices: u16,
    /// Trace duration in seconds.
    pub duration_s: u64,
    /// Mean seconds between meeting starts at peak intensity.
    pub mean_meeting_gap_s: f64,
    /// After the 2 seed members, each additional member joins with this
    /// probability (geometric tail).
    pub grow_p: f64,
    /// Hard cap on meeting size.
    pub max_meeting_size: u16,
    /// Mean meeting duration in seconds (exponential, clamped below).
    pub mean_meeting_duration_s: f64,
    /// Minimum meeting duration in seconds.
    pub min_meeting_duration_s: u64,
    /// Number of communities members are biased toward.
    pub communities: u16,
    /// Probability that a new member comes from the seed member's
    /// community.
    pub community_bias: f64,
    /// Hour-of-day intensity multipliers.
    pub diurnal: DiurnalProfile,
}

impl TraceModelConfig {
    /// Quick validity check (used by constructors and proptests).
    pub fn validate(&self) -> Result<(), String> {
        if self.devices < 2 {
            return Err("need at least 2 devices".into());
        }
        if !(0.0..1.0).contains(&self.grow_p) {
            return Err(format!("grow_p must be in [0,1), got {}", self.grow_p));
        }
        if !(0.0..=1.0).contains(&self.community_bias) {
            return Err(format!("community_bias must be in [0,1], got {}", self.community_bias));
        }
        if self.mean_meeting_gap_s <= 0.0 || self.mean_meeting_duration_s <= 0.0 {
            return Err("rates must be positive".into());
        }
        if self.communities == 0 {
            return Err("need at least one community".into());
        }
        Ok(())
    }
}

/// The seeded generator.
#[derive(Debug, Clone)]
pub struct TraceModel {
    cfg: TraceModelConfig,
    seed: u64,
}

impl TraceModel {
    /// Create a generator; the same `(config, seed)` always yields the same
    /// trace.
    ///
    /// # Panics
    /// Panics on invalid configuration (see [`TraceModelConfig::validate`]).
    pub fn new(cfg: TraceModelConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid trace model config: {e}");
        }
        Self { cfg, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &TraceModelConfig {
        &self.cfg
    }

    /// Generate the trace.
    pub fn generate(&self) -> Timeline {
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut events: Vec<ContactEvent> = Vec::new();

        // Device -> community assignment, round-robin for even sizes.
        let community_of = |d: DeviceId| -> u16 { d % cfg.communities };

        let peak = cfg.diurnal.iter().copied().fold(f64::MIN, f64::max).max(f64::MIN_POSITIVE);

        // Non-homogeneous Poisson via thinning: candidates at peak rate,
        // accepted with probability intensity(t)/peak.
        let mut t = 0f64;
        let mut members: Vec<DeviceId> = Vec::new();
        while t < cfg.duration_s as f64 {
            t += exp_sample(&mut rng, cfg.mean_meeting_gap_s);
            if t >= cfg.duration_s as f64 {
                break;
            }
            let hour = ((t as u64 / 3600) % 24) as usize;
            if rng.gen::<f64>() > cfg.diurnal[hour] / peak {
                continue; // thinned out
            }

            // Meeting membership: two seeds, then geometric growth with
            // community bias relative to the first seed.
            members.clear();
            let seed_dev = rng.gen_range(0..cfg.devices);
            members.push(seed_dev);
            let home = community_of(seed_dev);
            let cap = cfg.max_meeting_size.min(cfg.devices);
            while (members.len() as u16) < cap {
                // First extra member is unconditional (meetings are ≥ 2).
                if members.len() >= 2 && rng.gen::<f64>() >= cfg.grow_p {
                    break;
                }
                let candidate = if rng.gen::<f64>() < cfg.community_bias {
                    // sample within the seed's community
                    let size = community_members(cfg.devices, cfg.communities, home);
                    let idx = rng.gen_range(0..size);
                    nth_community_member(cfg.communities, home, idx)
                } else {
                    rng.gen_range(0..cfg.devices)
                };
                if !members.contains(&candidate) {
                    members.push(candidate);
                } else if members.len() < 2 {
                    continue; // must find a distinct second member
                } else {
                    break; // collision ends growth (keeps sizes modest)
                }
            }
            if members.len() < 2 {
                continue;
            }

            let dur = exp_sample(&mut rng, cfg.mean_meeting_duration_s)
                .max(cfg.min_meeting_duration_s as f64);
            let start = t as u64;
            let end = ((t + dur) as u64).min(cfg.duration_s);
            if end <= start {
                continue;
            }
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    events.push(
                        ContactEvent::new(start, end, members[i], members[j])
                            .expect("members are distinct and interval nonempty"),
                    );
                }
            }
        }

        Timeline::new(cfg.devices, cfg.duration_s, events)
    }
}

/// Number of devices in community `c` under round-robin assignment.
fn community_members(devices: u16, communities: u16, c: u16) -> u16 {
    let base = devices / communities;
    let extra = u16::from(c < devices % communities);
    base + extra
}

/// The `idx`-th device of community `c` under round-robin assignment.
fn nth_community_member(communities: u16, c: u16, idx: u16) -> DeviceId {
    c + idx * communities
}

fn exp_sample(rng: &mut SmallRng, mean: f64) -> f64 {
    // Inverse CDF; guard against log(0).
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceModelConfig {
        TraceModelConfig {
            devices: 9,
            duration_s: 24 * 3600,
            mean_meeting_gap_s: 600.0,
            grow_p: 0.5,
            max_meeting_size: 5,
            mean_meeting_duration_s: 1200.0,
            min_meeting_duration_s: 60,
            communities: 3,
            community_bias: 0.7,
            diurnal: WORKDAY_PROFILE,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = TraceModel::new(small_cfg(), 42);
        assert_eq!(m.generate(), m.generate());
        let other = TraceModel::new(small_cfg(), 43);
        assert_ne!(m.generate(), other.generate(), "different seeds differ");
    }

    #[test]
    fn events_are_well_formed() {
        let tl = TraceModel::new(small_cfg(), 7).generate();
        assert!(!tl.events().is_empty(), "a day of workday activity has meetings");
        for e in tl.events() {
            assert!(e.a < e.b);
            assert!(e.b < 9);
            assert!(e.end > e.start);
            assert!(e.end <= tl.duration());
        }
    }

    #[test]
    fn respects_max_meeting_size() {
        // With max size 3, no instant should have a clique larger than the
        // union of overlapping meetings would allow — spot-check degree: a
        // single meeting of size 3 yields degree ≤ 2 per meeting; overlaps
        // can exceed it, so only assert the trace is non-degenerate and
        // bounded by devices-1.
        let tl = TraceModel::new(small_cfg(), 11).generate();
        for t in (0..tl.duration()).step_by(3600) {
            let adj = tl.adjacency_at(t);
            for l in &adj {
                assert!(l.len() < 9);
            }
        }
    }

    #[test]
    fn night_is_quieter_than_day() {
        let mut cfg = small_cfg();
        cfg.duration_s = 72 * 3600;
        let tl = TraceModel::new(cfg, 13).generate();
        let mut night_edges = 0usize;
        let mut day_edges = 0usize;
        for day in 0..3u64 {
            for h in 0..24u64 {
                let t = day * 86_400 + h * 3600 + 1800;
                let n = tl.active_edges(t).len();
                if (0..6).contains(&h) {
                    night_edges += n;
                } else if (9..17).contains(&h) {
                    day_edges += n;
                }
            }
        }
        assert!(
            day_edges > night_edges * 2,
            "daytime contact volume ({day_edges}) should dominate night ({night_edges})"
        );
    }

    #[test]
    fn community_helpers_partition_devices() {
        let devices = 11u16;
        let communities = 3u16;
        let mut seen = vec![false; usize::from(devices)];
        for c in 0..communities {
            let size = community_members(devices, communities, c);
            for idx in 0..size {
                let d = nth_community_member(communities, c, idx);
                assert!(d < devices, "member {d} out of range");
                assert!(!seen[usize::from(d)], "device {d} assigned twice");
                seen[usize::from(d)] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "invalid trace model config")]
    fn invalid_config_panics() {
        let mut cfg = small_cfg();
        cfg.devices = 1;
        let _ = TraceModel::new(cfg, 0);
    }
}
