//! # dynagg-scenario
//!
//! Declarative experiment assembly: a [`ScenarioSpec`] names an
//! environment, a protocol (any of the 12 in `dynagg-core`) with its
//! configuration, seeds/rounds/trials, a failure plan, and the outputs to
//! record — either built programmatically (the figure modules in
//! `dynagg-bench` do this) or parsed from a TOML file (the
//! `experiments run <file.toml>` subcommand, over the offline `toml`
//! shim). Both paths meet in [`registry`], so a checked-in
//! `scenarios/*.toml` reproduces the corresponding hard-coded figure
//! bit-identically.
//!
//! Parsing and validation return typed [`ScenarioError`]s — an unknown
//! protocol name, a missing seed, or a key from the wrong environment
//! kind is a diagnosis, never a panic.
//!
//! ```
//! use dynagg_scenario::ScenarioSpec;
//!
//! let spec = ScenarioSpec::from_toml_str(
//!     r#"
//!     name = "demo"
//!     seed = 42
//!     n = 120
//!     rounds = 6
//!
//!     [env]
//!     kind = "uniform"
//!
//!     [protocol]
//!     name = "push-sum-revert"
//!     lambda = 0.01
//!     "#,
//! )
//! .unwrap();
//! let series = dynagg_scenario::run_series(&spec).unwrap();
//! assert_eq!(series.rounds.len(), 6);
//! assert_eq!(series.rounds[0].alive, 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parse;
pub mod registry;
mod spec;

pub use error::ScenarioError;
pub use registry::{
    build_env, run, run_series, trace_info, wire_cost, InstanceOutcome, ScenarioOutcome, TraceInfo,
    TrialOutput, WireCost,
};
pub use spec::{
    AdversarySpec, AsyncSpec, CliqueDrift, DriftSpec, Engine, EnvSpec, LatencySpec, Metric,
    OutputSpec, Probe, ProtocolSpec, Report, ScenarioSpec, ShardFallback, ShardsSpec, Sweep,
    SweepAxis, ValueSpec, WireAccounting,
};
