//! The environment/protocol registry and the scenario runner.
//!
//! This is the single place where a declarative [`ScenarioSpec`] meets the
//! concrete types in `dynagg-core` / `dynagg-sim`: [`build_env`] maps an
//! [`EnvSpec`] onto an environment, and [`run`] dispatches over
//! (protocol × engine) to assemble and drive a simulation. The hard-coded
//! figure modules in `dynagg-bench` construct specs and call these same
//! functions, so `experiments run <file.toml>` reproduces them
//! bit-identically.

use crate::error::ScenarioError;
use crate::spec::{
    topology_info, AdversarySpec, Engine, EnvSpec, LatencySpec, Probe, ProtocolSpec, Report,
    ScenarioSpec, ValueSpec, WireAccounting,
};
use dynagg_core::adaptive::AdaptiveRevert;
use dynagg_core::adversary::{Adversarial, Corruptible};
use dynagg_core::config::ResetConfig;
use dynagg_core::config::SketchConfig;
use dynagg_core::count_sketch::CountSketch;
use dynagg_core::count_sketch_reset::CountSketchReset;
use dynagg_core::epoch::{DriftModel, EpochPushSum, EPOCH_MSG_WIRE_BYTES};
use dynagg_core::extremum::DynamicExtremum;
use dynagg_core::full_transfer::FullTransfer;
use dynagg_core::histogram::{Buckets, DynamicHistogram};
use dynagg_core::invert_average::InvertAverage;
use dynagg_core::mass::MASS_WIRE_BYTES;
use dynagg_core::moments::DynamicMoments;
use dynagg_core::protocol::{NodeId, PairwiseProtocol, PushProtocol};
use dynagg_core::push_sum::PushSum;
use dynagg_core::push_sum_revert::PushSumRevert;
use dynagg_core::tree::TagTree;
use dynagg_core::wire::WireMessage;
use dynagg_node::loopback::ValueFn;
use dynagg_node::runtime::FRAME_HEADER_BYTES;
use dynagg_node::{AsyncConfig, AsyncNet, LatencyModel, ShardedNet};
use dynagg_sim::env::{ClusteredEnv, Environment, SpatialEnv, TraceEnv, UniformEnv};
use dynagg_sim::partition::{self, PartitionTable};
use dynagg_sim::shard::ShardMap;
use dynagg_sim::{par, runner, Series};
use dynagg_sketch::age::INF_AGE;
use dynagg_sketch::codec;
use dynagg_trace::datasets::Dataset;
use dynagg_trace::Timeline;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What one trial produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutput {
    /// The per-round metric series.
    pub series: Series,
    /// `samples[k][age]` — finite age-counter histogram per bit index,
    /// collected after the last round. Only for
    /// [`Report::CounterCdf`] runs.
    pub counter_samples: Option<Vec<Vec<u64>>>,
    /// The post-run node-state reading, when the spec requested a
    /// [`Probe`].
    pub probe: Option<f64>,
}

/// All trials of one sweep instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceOutcome {
    /// `axis=value` label (sweeps only).
    pub label: Option<String>,
    /// The effective population (trace environments resolve it here).
    pub n: usize,
    /// Rounds actually simulated.
    pub rounds: u64,
    /// One output per trial.
    pub trials: Vec<TrialOutput>,
}

impl InstanceOutcome {
    /// The single series of a one-trial instance.
    pub fn series(&self) -> &Series {
        &self.trials[0].series
    }
}

/// A full scenario result: one outcome per sweep instance (a single
/// outcome when there is no sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Sweep instances, in sweep-value order.
    pub instances: Vec<InstanceOutcome>,
}

/// Facts about a trace dataset the spec layer needs before running
/// (population, horizon, hourly bucketing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInfo {
    /// Devices in the trace (the population).
    pub devices: usize,
    /// Rounds in the full trace.
    pub total_rounds: u64,
    /// Rounds per simulated hour.
    pub rounds_per_hour: u64,
}

/// Inspect a dataset without running anything.
pub fn trace_info(dataset: Dataset) -> TraceInfo {
    trace_data(dataset).0
}

/// Process-level memo of the (deterministic) synthetic trace per dataset:
/// one scenario run touches the dataset several times (shape resolution,
/// one environment per trial, hourly bucketing in fig11), and regenerating
/// the full contact timeline each time is pure waste.
fn trace_data(dataset: Dataset) -> (TraceInfo, Timeline) {
    static CACHE: OnceLock<Mutex<HashMap<Dataset, (TraceInfo, Timeline)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("trace cache poisoned");
    guard
        .entry(dataset)
        .or_insert_with(|| {
            let env = TraceEnv::paper(dataset.generate());
            let info = TraceInfo {
                devices: env.device_count(),
                total_rounds: env.total_rounds(),
                rounds_per_hour: env.rounds_per_hour(),
            };
            (info, env.timeline().clone())
        })
        .clone()
}

/// Build the environment a spec names. `n` is the effective population and
/// `seed` the master seed (the clustered environment derives its migration
/// stream from it).
pub fn build_env(env: &EnvSpec, n: usize, seed: u64) -> Box<dyn Environment> {
    match env {
        EnvSpec::Uniform { broadcast_fanout } => {
            let mut e = UniformEnv::new();
            if let Some(f) = broadcast_fanout {
                e = e.with_broadcast_fanout(*f);
            }
            Box::new(e)
        }
        EnvSpec::Spatial { max_walk } => {
            let mut e = SpatialEnv::for_nodes(n);
            if let Some(w) = max_walk {
                e = e.with_max_walk(*w);
            }
            Box::new(e)
        }
        EnvSpec::Clustered { clusters, migration, bridge, events } => {
            let e = ClusteredEnv::new(n, *clusters, *migration, *bridge, seed);
            Box::new(if events.is_empty() { e } else { e.with_events(events.clone()) })
        }
        EnvSpec::Trace { dataset } => Box::new(TraceEnv::paper(trace_data(*dataset).1)),
    }
}

/// Run a full scenario: validate, expand the sweep, run every instance
/// (instances fan out as parallel trials, like the hard-coded figures).
pub fn run(spec: &ScenarioSpec) -> Result<ScenarioOutcome, ScenarioError> {
    spec.validate()?;
    let instances = spec.instances();
    let outcomes = par::par_map(&instances, |_, (label, inst)| run_instance(label.clone(), inst));
    Ok(ScenarioOutcome { instances: outcomes })
}

/// Run a sweepless, single-trial spec and return its series — the call
/// the figure modules' line runners reduce to.
///
/// # Panics
/// Panics if the spec has a sweep or multiple trials (callers hold those
/// at the figure level); validation errors are returned.
pub fn run_series(spec: &ScenarioSpec) -> Result<Series, ScenarioError> {
    spec.validate()?;
    assert!(spec.sweep.is_none(), "run_series takes a sweepless spec; use run()");
    assert_eq!(spec.trials, 1, "run_series takes a single-trial spec; use run()");
    let (_, inst) = spec.instances().pop().expect("one instance");
    let mut outcome = run_instance(None, &inst);
    Ok(outcome.trials.pop().expect("one trial").series)
}

/// Run one sweep instance (all its trials). The spec must have validated.
fn run_instance(label: Option<String>, spec: &ScenarioSpec) -> InstanceOutcome {
    let (n, rounds) = resolve_shape(spec);
    let trials = if spec.trials == 1 {
        vec![run_trial(spec, spec.seed, n, rounds)]
    } else {
        par::run_trials(spec.seed, spec.trials, |seed| run_trial(spec, seed, n, rounds))
    };
    InstanceOutcome { label, n, rounds, trials }
}

/// Effective population and horizon (trace environments resolve both from
/// the dataset).
fn resolve_shape(spec: &ScenarioSpec) -> (usize, u64) {
    match &spec.env {
        EnvSpec::Trace { dataset } => {
            let info = trace_info(*dataset);
            (info.devices, spec.rounds.unwrap_or(info.total_rounds).min(info.total_rounds))
        }
        _ => (
            spec.n.expect("validated: non-trace specs have n"),
            spec.rounds.expect("validated: non-trace specs have rounds"),
        ),
    }
}

/// One trial: dispatch over (protocol × engine) into a concrete,
/// monomorphized simulation. This match *is* the protocol registry.
fn run_trial(spec: &ScenarioSpec, seed: u64, n: usize, rounds: u64) -> TrialOutput {
    use ProtocolSpec as P;
    match spec.protocol {
        P::PushSum => {
            let probe = spec.output.probe.map(|Probe::MassWeight| |p: &PushSum| p.mass().weight);
            let factory = |_, v| PushSum::averaging(v);
            match (spec.engine, spec.adversary) {
                (Engine::Pairwise, _) => run_pairwise(spec, seed, n, rounds, factory, probe),
                (_, Some(adv)) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    adversarial(adv, n, factory),
                    None::<fn(&Adversarial<PushSum>) -> f64>,
                ),
                _ => run_message(spec, seed, n, rounds, factory, probe),
            }
        }
        P::PushSumRevert { lambda } => {
            let probe =
                spec.output.probe.map(|Probe::MassWeight| |p: &PushSumRevert| p.mass().weight);
            let factory = move |_, v| PushSumRevert::new(v, lambda);
            match (spec.engine, spec.adversary) {
                (Engine::Pairwise, _) => run_pairwise(spec, seed, n, rounds, factory, probe),
                (_, Some(adv)) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    adversarial(adv, n, factory),
                    None::<fn(&Adversarial<PushSumRevert>) -> f64>,
                ),
                _ => run_message(spec, seed, n, rounds, factory, probe),
            }
        }
        P::FullTransfer { lambda, parcels, window } => {
            let probe =
                spec.output.probe.map(|Probe::MassWeight| |p: &FullTransfer| p.mass().weight);
            let factory = move |_, v: f64| {
                FullTransfer::try_new(v, lambda, parcels, window).expect("validated config")
            };
            match spec.adversary {
                Some(adv) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    adversarial(adv, n, factory),
                    None::<fn(&Adversarial<FullTransfer>) -> f64>,
                ),
                None => run_message(spec, seed, n, rounds, factory, probe),
            }
        }
        P::AdaptiveRevert { lambda } => {
            let probe =
                spec.output.probe.map(|Probe::MassWeight| |p: &AdaptiveRevert| p.mass().weight);
            let factory = move |_, v| AdaptiveRevert::new(v, lambda);
            match spec.adversary {
                Some(adv) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    adversarial(adv, n, factory),
                    None::<fn(&Adversarial<AdaptiveRevert>) -> f64>,
                ),
                None => run_message(spec, seed, n, rounds, factory, probe),
            }
        }
        P::EpochPushSum { epoch_len, settle_len, drift_prob, clique_drift } => {
            let factory = move |id: NodeId, v| {
                let mut p = EpochPushSum::new(v, epoch_len);
                if let Some(s) = settle_len {
                    p = p.with_settle_len(s);
                }
                if drift_prob > 0.0 {
                    p = p.with_drift(drift_prob);
                }
                if let Some(cd) = clique_drift {
                    let clique = id % cd.clusters;
                    p = p
                        .with_clock_offset(cd.offset_of(clique, epoch_len))
                        .with_drift_model(DriftModel::ConstantSkew { rate: cd.rate_of(clique) });
                }
                p
            };
            match spec.adversary {
                Some(adv) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    adversarial(adv, n, factory),
                    None::<fn(&Adversarial<EpochPushSum>) -> f64>,
                ),
                None => {
                    run_message(spec, seed, n, rounds, factory, None::<fn(&EpochPushSum) -> f64>)
                }
            }
        }
        P::CountSketch { multiplier, hash_seed_xor } => {
            let cfg = SketchConfig::paper(n as u64 * multiplier, seed ^ hash_seed_xor);
            let factory = move |id: NodeId, _| {
                if multiplier == 1 {
                    CountSketch::counting(cfg, u64::from(id))
                } else {
                    CountSketch::summing(cfg, u64::from(id), multiplier)
                }
            };
            match spec.adversary {
                Some(adv) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    adversarial(adv, n, factory),
                    None::<fn(&Adversarial<CountSketch>) -> f64>,
                ),
                None => {
                    run_message(spec, seed, n, rounds, factory, None::<fn(&CountSketch) -> f64>)
                }
            }
        }
        P::CountSketchReset { cutoff, push_pull, multiplier, hash_seed_xor } => {
            let cfg = ResetConfig::paper(n as u64 * multiplier, seed ^ hash_seed_xor)
                .with_cutoff(cutoff)
                .with_push_pull(push_pull);
            let factory = move |id: NodeId, _| {
                CountSketchReset::with_multiplier(cfg, u64::from(id), multiplier)
            };
            match (spec.output.report, spec.adversary) {
                (Report::Series, Some(adv)) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    adversarial(adv, n, factory),
                    None::<fn(&Adversarial<CountSketchReset>) -> f64>,
                ),
                (Report::Series, None) => run_message(
                    spec,
                    seed,
                    n,
                    rounds,
                    factory,
                    None::<fn(&CountSketchReset) -> f64>,
                ),
                (Report::CounterCdf, _) => run_counter_cdf(spec, seed, n, rounds, cfg, multiplier),
            }
        }
        P::InvertAverage { lambda, hash_seed_xor } => {
            let cfg = ResetConfig::paper(n as u64, seed ^ hash_seed_xor);
            run_message(
                spec,
                seed,
                n,
                rounds,
                move |id, v| InvertAverage::new(v, lambda, cfg, u64::from(id)),
                None::<fn(&InvertAverage) -> f64>,
            )
        }
        P::TagTree { child_timeout } => run_message(
            spec,
            seed,
            n,
            rounds,
            move |id, v| TagTree::new(v, id == 0, child_timeout),
            None::<fn(&TagTree) -> f64>,
        ),
        P::Extremum { mode, ttl } => {
            use dynagg_core::extremum::ExtremumMode;
            run_message(
                spec,
                seed,
                n,
                rounds,
                move |_, v| match (ttl, mode) {
                    (Some(t), _) => DynamicExtremum::new(mode, v, t),
                    (None, ExtremumMode::Max) => DynamicExtremum::max(v),
                    (None, ExtremumMode::Min) => DynamicExtremum::min(v),
                },
                None::<fn(&DynamicExtremum) -> f64>,
            )
        }
        P::Moments { lambda } => {
            let factory = move |_, v| DynamicMoments::new(v, lambda);
            match spec.engine {
                Engine::Pairwise => {
                    run_pairwise(spec, seed, n, rounds, factory, None::<fn(&DynamicMoments) -> f64>)
                }
                _ => {
                    run_message(spec, seed, n, rounds, factory, None::<fn(&DynamicMoments) -> f64>)
                }
            }
        }
        P::Histogram { lo, hi, buckets, lambda } => {
            let geometry = Buckets::new(lo, hi, buckets);
            run_message(
                spec,
                seed,
                n,
                rounds,
                move |_, v| DynamicHistogram::new(geometry, v, lambda),
                None::<fn(&DynamicHistogram) -> f64>,
            )
        }
    }
}

/// The resolved partition schedule of a validated spec (empty when the
/// spec has no `[[partition]]` tables).
fn partition_table(spec: &ScenarioSpec, n: usize) -> PartitionTable {
    if spec.partitions.is_empty() {
        return PartitionTable::empty();
    }
    let topo = topology_info(&spec.env, n);
    let events = spec
        .partitions
        .iter()
        .map(|event| partition::resolve(event, n, &topo).expect("validated partition event"))
        .collect();
    PartitionTable::new(events).expect("validated partition schedule")
}

/// Wrap a protocol factory so the first `⌈fraction · n⌉` host ids run the
/// Byzantine wrapper and everyone else an honest pass-through.
fn adversarial<P, F>(
    adv: AdversarySpec,
    n: usize,
    mut factory: F,
) -> impl FnMut(NodeId, f64) -> Adversarial<P> + 'static
where
    P: PushProtocol + 'static,
    P::Message: Corruptible,
    F: FnMut(NodeId, f64) -> P + 'static,
{
    let malicious = ((adv.fraction * n as f64).ceil() as usize).clamp(1, n.max(1)) as NodeId;
    move |id, v| {
        let inner = factory(id, v);
        if id < malicious {
            Adversarial::malicious(inner, adv.attack, adv.from_round)
        } else {
            Adversarial::honest(inner)
        }
    }
}

/// Assemble the engine-agnostic half of the builder.
fn base_builder(spec: &ScenarioSpec, seed: u64, n: usize) -> runner::Builder {
    let b = runner::builder(seed).environment_boxed(build_env(&spec.env, n, seed));
    match spec.values {
        ValueSpec::Paper => b.nodes_with_paper_values(n),
        ValueSpec::Constant(x) => b.nodes_with_constant(n, x),
    }
}

/// Message-passing dispatch: the push engine or the asynchronous
/// discrete-event engine, chosen by the spec (atomic pairwise exchanges
/// are handled per-protocol by the caller). `probe` is the optional
/// post-run node-state reading.
fn run_message<P, F, G>(
    spec: &ScenarioSpec,
    seed: u64,
    n: usize,
    rounds: u64,
    factory: F,
    probe: Option<G>,
) -> TrialOutput
where
    P: PushProtocol + Send + 'static,
    P::Message: WireMessage + Send,
    F: FnMut(NodeId, f64) -> P + 'static,
    G: Fn(&P) -> f64,
{
    match spec.engine {
        Engine::Async => {
            debug_assert!(probe.is_none(), "validation rejects probes under the async engine");
            TrialOutput {
                series: run_async(spec, seed, n, rounds, factory),
                counter_samples: None,
                probe: None,
            }
        }
        _ => run_push(spec, seed, n, rounds, factory, probe),
    }
}

fn run_push<P, F, G>(
    spec: &ScenarioSpec,
    seed: u64,
    n: usize,
    rounds: u64,
    factory: F,
    probe: Option<G>,
) -> TrialOutput
where
    P: PushProtocol + 'static,
    P::Message: WireMessage,
    F: FnMut(NodeId, f64) -> P,
    G: Fn(&P) -> f64,
{
    let mut sim = base_builder(spec, seed, n)
        .protocol(factory)
        .truth(spec.truth)
        .failure(spec.failure)
        .message_loss(spec.loss)
        .partition(partition_table(spec, n))
        .build();
    if spec.wire == WireAccounting::Measured {
        sim = sim.with_wire_meter(measured_frame_bytes::<P>);
    }
    let mut out = match probe {
        None => TrialOutput { series: sim.run(rounds), counter_samples: None, probe: None },
        Some(read) => {
            let mut sim = sim;
            for _ in 0..rounds {
                sim.step();
            }
            let reading = sim.nodes().map(|(_, p)| read(p)).sum();
            TrialOutput {
                series: sim.series().clone(),
                counter_samples: None,
                probe: Some(reading),
            }
        }
    };
    if spec.wire == WireAccounting::Priced {
        price_wire(&mut out.series, &spec.protocol, n, seed);
    }
    out
}

fn run_pairwise<P, F, G>(
    spec: &ScenarioSpec,
    seed: u64,
    n: usize,
    rounds: u64,
    factory: F,
    probe: Option<G>,
) -> TrialOutput
where
    P: PairwiseProtocol,
    F: FnMut(NodeId, f64) -> P,
    G: Fn(&P) -> f64,
{
    let sim = base_builder(spec, seed, n)
        .protocol(factory)
        .truth(spec.truth)
        .failure(spec.failure)
        .message_loss(spec.loss)
        .partition(partition_table(spec, n))
        .build_pairwise();
    let mut out = match probe {
        None => TrialOutput { series: sim.run(rounds), counter_samples: None, probe: None },
        Some(read) => {
            let mut sim = sim;
            for _ in 0..rounds {
                sim.step();
            }
            let reading = sim.nodes().map(|(_, p)| read(p)).sum();
            TrialOutput {
                series: sim.series().clone(),
                counter_samples: None,
                probe: Some(reading),
            }
        }
    };
    price_wire(&mut out.series, &spec.protocol, n, seed);
    out
}

/// Assemble and drive the asynchronous engine: nominal rounds map to
/// `interval_ms` of simulated wall-clock each, and the sampled series has
/// the same shape as a lockstep run of the same horizon. Peers come from
/// the spec's environment through the shared membership layer, so every
/// `env` kind runs asynchronously — topology changes (clique mobility,
/// trace replay) land at nominal round boundaries.
fn run_async<P, F>(spec: &ScenarioSpec, seed: u64, n: usize, rounds: u64, factory: F) -> Series
where
    P: PushProtocol + Send + 'static,
    P::Message: WireMessage + Send,
    F: FnMut(NodeId, f64) -> P + 'static,
{
    let a = spec.asynchrony.unwrap_or_default();
    let cfg = async_net_config(spec, seed);
    let value_gen = async_value_gen(spec);
    let drift = a.drift;
    // `shards = 1` (or an absent key) keeps the sequential engine, whose
    // pinned digests predate sharding; `shards ≥ 2` runs the sharded
    // engine, bit-identical across every count ≥ 2 but statistically
    // distinct from the sequential engine (its loss/latency draws are
    // per-node streams, not one global stream in pop order).
    let (shards, _fallback) = spec.effective_shards(n);
    if shards >= 2 {
        let map = ShardMap::from_topology(&topology_info(&spec.env, n), n, shards);
        let mut net = ShardedNet::new(
            n,
            cfg,
            map,
            value_gen,
            Box::new(move |id| drift.model_for(id, n)),
            Box::new(factory),
        )
        .with_membership(build_env(&spec.env, n, seed))
        .with_truth(spec.truth)
        .with_failure(spec.failure)
        .with_partition(partition_table(spec, n));
        net.run(rounds);
        return net.into_series();
    }
    let mut net = AsyncNet::new(
        n,
        cfg,
        value_gen,
        Box::new(move |id| drift.model_for(id, n)),
        Box::new(factory),
    )
    .with_membership(build_env(&spec.env, n, seed))
    .with_truth(spec.truth)
    .with_failure(spec.failure)
    .with_partition(partition_table(spec, n));
    net.run(rounds);
    net.into_series()
}

/// The `[async]` table resolved to an engine configuration.
fn async_net_config(spec: &ScenarioSpec, seed: u64) -> AsyncConfig {
    let a = spec.asynchrony.unwrap_or_default();
    let mut cfg = AsyncConfig::new(seed);
    cfg.interval_ms = a.interval_ms;
    cfg.jitter = a.jitter;
    cfg.latency = match a.latency {
        LatencySpec::Constant { ms } => LatencyModel::Constant { ms },
        LatencySpec::Uniform { lo_ms, hi_ms } => LatencyModel::Uniform { lo_ms, hi_ms },
        LatencySpec::Exponential { mean_ms } => LatencyModel::Exponential { mean_ms },
    };
    cfg.loss = spec.loss;
    cfg.sample_every_ms = a.sample_every_ms.unwrap_or(a.interval_ms);
    cfg
}

/// The spec's initial-value generator in the async engine's boxed form.
fn async_value_gen(spec: &ScenarioSpec) -> ValueFn {
    match spec.values {
        ValueSpec::Paper => Box::new(|rng, _| rng.gen_range(0.0..100.0)),
        ValueSpec::Constant(x) => Box::new(move |_, _| x),
    }
}

/// Fill a lockstep series' `wire_bytes` column. The lockstep engines
/// count raw payload bytes and never encode frames, so the registry
/// prices each message at the protocol's [`wire_cost`] plus the async
/// frame header — the same frame shape `AsyncNet` measures. Exact for
/// scalar payloads; an approximation for sketch payloads, whose RLE size
/// varies over a run (the priced size is a freshly-initialized node's).
fn price_wire(series: &mut Series, protocol: &ProtocolSpec, n: usize, seed: u64) {
    let per_msg = (wire_cost(protocol, n, seed).encoded_bytes + FRAME_HEADER_BYTES) as u64;
    for r in &mut series.rounds {
        r.wire_bytes = r.messages * per_msg;
    }
}

/// The push engine's `wire = "measured"` meter: the message's actual
/// codec size (via the version-stamped encode memo for sketch payloads —
/// one `Arc` snapshot fanned to `k` partners is encoded once) plus the
/// same frame header `AsyncNet` frames carry.
fn measured_frame_bytes<P>(msg: &P::Message) -> u64
where
    P: PushProtocol,
    P::Message: WireMessage,
{
    (msg.encoded_len() + FRAME_HEADER_BYTES) as u64
}

/// Per-message wire cost of a protocol as the registry would build it for
/// population `n`: `raw_bytes` is the paper-comparable in-memory payload
/// accounting ([`PushProtocol::message_bytes`]'s convention), and
/// `encoded_bytes` the actual wire codec's size (RLE for age matrices,
/// packed registers for PCSA; identical to raw for scalar payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCost {
    /// Raw payload bytes.
    pub raw_bytes: usize,
    /// Encoded (wire-codec) bytes of a freshly-initialized node's message.
    pub encoded_bytes: usize,
}

/// Compute the [`WireCost`] of one gossip message without simulating —
/// the declarative path for bandwidth comparisons (the §IV-B cost
/// argument).
pub fn wire_cost(protocol: &ProtocolSpec, n: usize, seed: u64) -> WireCost {
    use ProtocolSpec as P;
    let scalar = |bytes: usize| WireCost { raw_bytes: bytes, encoded_bytes: bytes };
    match *protocol {
        P::PushSum
        | P::PushSumRevert { .. }
        | P::AdaptiveRevert { .. }
        | P::FullTransfer { .. } => scalar(MASS_WIRE_BYTES),
        P::EpochPushSum { .. } => scalar(EPOCH_MSG_WIRE_BYTES),
        P::Moments { .. } => scalar(2 * MASS_WIRE_BYTES),
        P::Extremum { .. } => scalar(12),
        // TagTree's steady-state frame (the Partial variant): the engine
        // accounts 16 bytes of payload; the wire form adds a tag byte.
        P::TagTree { .. } => WireCost { raw_bytes: 16, encoded_bytes: 17 },
        // Histogram: weight + buckets; the wire form adds a u32 length.
        P::Histogram { buckets, .. } => WireCost {
            raw_bytes: 8 * (1 + buckets as usize),
            encoded_bytes: 12 + 8 * buckets as usize,
        },
        P::CountSketch { multiplier, hash_seed_xor } => {
            let cfg = SketchConfig::paper(n as u64 * multiplier, seed ^ hash_seed_xor);
            let node = if multiplier == 1 {
                CountSketch::counting(cfg, 0)
            } else {
                CountSketch::summing(cfg, 0, multiplier)
            };
            WireCost {
                raw_bytes: node.sketch().wire_bytes(),
                encoded_bytes: codec::encode_pcsa(node.sketch()).len(),
            }
        }
        P::CountSketchReset { cutoff, push_pull, multiplier, hash_seed_xor } => {
            let cfg = ResetConfig::paper(n as u64 * multiplier, seed ^ hash_seed_xor)
                .with_cutoff(cutoff)
                .with_push_pull(push_pull);
            let node = CountSketchReset::with_multiplier(cfg, 0, multiplier);
            WireCost {
                raw_bytes: node.ages().wire_bytes(),
                encoded_bytes: codec::encoded_len_ages(node.ages()),
            }
        }
        P::InvertAverage { hash_seed_xor, .. } => {
            // One counting matrix (sized for hosts, not the sum range)
            // plus a 16-byte mass per sum.
            let cfg = ResetConfig::paper(n as u64, seed ^ hash_seed_xor);
            let node = CountSketchReset::counting(cfg, 0);
            WireCost {
                raw_bytes: node.ages().wire_bytes() + MASS_WIRE_BYTES,
                // `InvertMsg` on the wire: flag byte + mass + matrix.
                encoded_bytes: 1 + MASS_WIRE_BYTES + codec::encoded_len_ages(node.ages()),
            }
        }
    }
}

/// The Fig. 6 readout: run to convergence, then histogram every live
/// host's finite age counters per bit index.
fn run_counter_cdf(
    spec: &ScenarioSpec,
    seed: u64,
    n: usize,
    rounds: u64,
    cfg: ResetConfig,
    multiplier: u64,
) -> TrialOutput {
    let factory =
        move |id: NodeId, _: f64| CountSketchReset::with_multiplier(cfg, u64::from(id), multiplier);
    let width = cfg.sketch.width as usize + 1;
    let mut samples = vec![vec![0u64; usize::from(INF_AGE)]; width];
    let read_node = |samples: &mut Vec<Vec<u64>>, node: &CountSketchReset| {
        for (_, k, age) in node.ages().finite_cells() {
            samples[usize::from(k)][usize::from(age)] += 1;
        }
    };

    if spec.engine == Engine::Async {
        // The sequential async engine owns every node, so the post-run
        // readout walks the same matrices a lockstep run would
        // (validation rejects `shards ≥ 2`, whose nodes live in worker
        // threads).
        let a = spec.asynchrony.unwrap_or_default();
        let drift = a.drift;
        let mut net = AsyncNet::new(
            n,
            async_net_config(spec, seed),
            async_value_gen(spec),
            Box::new(move |id| drift.model_for(id, n)),
            Box::new(factory),
        )
        .with_membership(build_env(&spec.env, n, seed))
        .with_truth(spec.truth)
        .with_failure(spec.failure)
        .with_partition(partition_table(spec, n));
        net.run(rounds);
        for (_, node) in net.nodes() {
            read_node(&mut samples, node);
        }
        return TrialOutput {
            series: net.into_series(),
            counter_samples: Some(samples),
            probe: None,
        };
    }

    let mut sim = base_builder(spec, seed, n)
        .protocol(factory)
        .truth(spec.truth)
        .failure(spec.failure)
        .message_loss(spec.loss)
        .partition(partition_table(spec, n))
        .build();
    if spec.wire == WireAccounting::Measured {
        sim = sim.with_wire_meter(measured_frame_bytes::<CountSketchReset>);
    }
    for _ in 0..rounds {
        sim.step();
    }
    for (_, node) in sim.nodes() {
        read_node(&mut samples, node);
    }
    let mut series = sim.series().clone();
    if spec.wire == WireAccounting::Priced {
        price_wire(&mut series, &spec.protocol, n, seed);
    }
    TrialOutput { series, counter_samples: Some(samples), probe: None }
}
