//! TOML → [`ScenarioSpec`] deserialization.
//!
//! Hand-rolled against the `toml` shim's value model (the serde shim is a
//! no-op, so there is no derive to lean on) with strict key checking:
//! every table rejects keys it does not know, so a `clusters` key under
//! `kind = "uniform"` is a typed error rather than silently dead
//! configuration.

use crate::error::ScenarioError;
use crate::spec::{
    AdversarySpec, AsyncSpec, CliqueDrift, DriftSpec, Engine, EnvSpec, LatencySpec, Metric,
    OutputSpec, Probe, ProtocolSpec, Report, ScenarioSpec, ShardsSpec, Sweep, SweepAxis, ValueSpec,
    WireAccounting,
};
use dynagg_core::adversary::Attack;
use dynagg_core::extremum::ExtremumMode;
use dynagg_sim::env::{MobilityEvent, MobilityKind};
use dynagg_sim::partition::{Island, PartitionEvent};
use dynagg_sim::{FailureMode, FailureSpec, Truth};
use dynagg_sketch::cutoff::Cutoff;
use dynagg_trace::datasets::Dataset;
use toml::{Table, Value};

impl ScenarioSpec {
    /// Parse and validate a scenario from TOML text.
    pub fn from_toml_str(src: &str) -> Result<Self, ScenarioError> {
        let spec = Self::from_table(&toml::parse(src)?)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Deserialize from an already-parsed TOML table (not yet validated).
    pub fn from_table(doc: &Table) -> Result<Self, ScenarioError> {
        let top = Ctx { table: doc, name: "" };
        top.check_keys(&[
            "name",
            "description",
            "seed",
            "n",
            "rounds",
            "trials",
            "engine",
            "wire",
            "truth",
            "loss",
            "async",
            "env",
            "values",
            "protocol",
            "failure",
            "partition",
            "adversary",
            "output",
            "sweep",
        ])?;

        let name = top.req_str("name")?.to_string();
        let description = top.opt_str("description")?.unwrap_or_default().to_string();
        let seed = top.req_u64("seed")?;
        let n = top.opt_u64("n")?.map(|v| v as usize);
        let rounds = top.opt_u64("rounds")?;
        let trials = top.opt_u64("trials")?.unwrap_or(1);
        let engine = match top.opt_str("engine")? {
            None | Some("push") => Engine::Push,
            Some("pairwise") => Engine::Pairwise,
            Some("async") => Engine::Async,
            Some(other) => {
                return Err(ScenarioError::UnknownName { what: "engine", name: other.into() })
            }
        };
        let wire = match top.opt_str("wire")? {
            None | Some("priced") => WireAccounting::Priced,
            Some("measured") => WireAccounting::Measured,
            Some(other) => {
                return Err(ScenarioError::UnknownName { what: "wire", name: other.into() })
            }
        };
        let asynchrony = match top.opt_table("async")? {
            None => None,
            Some(t) => Some(parse_async(t)?),
        };
        let truth = match top.opt_str("truth")? {
            None => Truth::Mean,
            Some(s) => s
                .parse()
                .map_err(|_| ScenarioError::UnknownName { what: "truth", name: s.into() })?,
        };
        let loss = top.opt_f64("loss")?.unwrap_or(0.0);

        let env = parse_env(top.req_table("env")?)?;
        let values = match top.opt_table("values")? {
            None => ValueSpec::Paper,
            Some(t) => parse_values(t)?,
        };
        let protocol = parse_protocol(top.req_table("protocol")?)?;
        let failure = match top.opt_table("failure")? {
            None => FailureSpec::None,
            Some(t) => parse_failure(t)?,
        };
        let partitions = match top.opt_array("partition")? {
            None => Vec::new(),
            Some(items) => items
                .iter()
                .map(|item| {
                    let t = item.as_table().ok_or(ScenarioError::Type {
                        key: "partition".into(),
                        expected: "array of tables ([[partition]])",
                        found: item.type_name(),
                    })?;
                    parse_partition(t)
                })
                .collect::<Result<_, _>>()?,
        };
        let adversary = match top.opt_table("adversary")? {
            None => None,
            Some(t) => Some(parse_adversary(t)?),
        };
        let output = match top.opt_table("output")? {
            None => OutputSpec::default(),
            Some(t) => parse_output(t)?,
        };
        let sweep = match top.opt_table("sweep")? {
            None => None,
            Some(t) => Some(parse_sweep(t)?),
        };

        Ok(ScenarioSpec {
            name,
            description,
            seed,
            n,
            rounds,
            trials,
            engine,
            wire,
            asynchrony,
            env,
            values,
            protocol,
            truth,
            failure,
            loss,
            partitions,
            adversary,
            output,
            sweep,
        })
    }
}

/// A table plus its name, with typed accessors that produce
/// [`ScenarioError`]s mentioning both.
struct Ctx<'a> {
    table: &'a Table,
    name: &'static str,
}

impl<'a> Ctx<'a> {
    fn check_keys(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for key in self.table.keys() {
            if !allowed.contains(&key) {
                return Err(ScenarioError::UnknownKey { table: self.name, key: key.to_string() });
            }
        }
        Ok(())
    }

    fn key_path(&self, key: &str) -> String {
        if self.name.is_empty() {
            key.to_string()
        } else {
            format!("{}.{}", self.name, key)
        }
    }

    fn req(&self, key: &'static str) -> Result<&'a Value, ScenarioError> {
        self.table.get(key).ok_or(ScenarioError::Missing { table: self.name, key })
    }

    fn type_err(&self, key: &str, expected: &'static str, v: &Value) -> ScenarioError {
        ScenarioError::Type { key: self.key_path(key), expected, found: v.type_name() }
    }

    fn req_str(&self, key: &'static str) -> Result<&'a str, ScenarioError> {
        let v = self.req(key)?;
        v.as_str().ok_or_else(|| self.type_err(key, "string", v))
    }

    fn opt_str(&self, key: &'static str) -> Result<Option<&'a str>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_str().map(Some).ok_or_else(|| self.type_err(key, "string", v)),
        }
    }

    fn to_u64(&self, key: &str, v: &Value) -> Result<u64, ScenarioError> {
        let i = v.as_integer().ok_or_else(|| self.type_err(key, "integer", v))?;
        u64::try_from(i).map_err(|_| ScenarioError::Invalid {
            key: self.key_path(key),
            reason: format!("must be non-negative, got {i}"),
        })
    }

    fn req_u64(&self, key: &'static str) -> Result<u64, ScenarioError> {
        let v = self.req(key)?;
        self.to_u64(key, v)
    }

    fn opt_u64(&self, key: &'static str) -> Result<Option<u64>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => self.to_u64(key, v).map(Some),
        }
    }

    fn req_f64(&self, key: &'static str) -> Result<f64, ScenarioError> {
        let v = self.req(key)?;
        v.as_float().ok_or_else(|| self.type_err(key, "number", v))
    }

    fn opt_f64(&self, key: &'static str) -> Result<Option<f64>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_float().map(Some).ok_or_else(|| self.type_err(key, "number", v)),
        }
    }

    fn opt_bool(&self, key: &'static str) -> Result<Option<bool>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_bool().map(Some).ok_or_else(|| self.type_err(key, "boolean", v)),
        }
    }

    fn req_table(&self, key: &'static str) -> Result<&'a Table, ScenarioError> {
        let v = self.req(key)?;
        v.as_table().ok_or_else(|| self.type_err(key, "table", v))
    }

    fn opt_table(&self, key: &'static str) -> Result<Option<&'a Table>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_table().map(Some).ok_or_else(|| self.type_err(key, "table", v)),
        }
    }

    fn opt_array(&self, key: &'static str) -> Result<Option<&'a [Value]>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_array().map(Some).ok_or_else(|| self.type_err(key, "array", v)),
        }
    }
}

/// The `[async]` table (see [`AsyncSpec`] for defaults).
fn parse_async(table: &Table) -> Result<AsyncSpec, ScenarioError> {
    let a = Ctx { table, name: "async" };
    a.check_keys(&["interval_ms", "jitter", "latency", "drift", "sample_every_ms", "shards"])?;
    let defaults = AsyncSpec::default();
    let latency = match a.opt_table("latency")? {
        None => defaults.latency,
        Some(t) => {
            let l = Ctx { table: t, name: "async.latency" };
            match l.req_str("kind")? {
                "constant" => {
                    l.check_keys(&["kind", "ms"])?;
                    LatencySpec::Constant { ms: l.req_u64("ms")? }
                }
                "uniform" => {
                    l.check_keys(&["kind", "lo_ms", "hi_ms"])?;
                    LatencySpec::Uniform { lo_ms: l.req_u64("lo_ms")?, hi_ms: l.req_u64("hi_ms")? }
                }
                "exponential" => {
                    l.check_keys(&["kind", "mean_ms"])?;
                    LatencySpec::Exponential { mean_ms: l.req_f64("mean_ms")? }
                }
                other => {
                    return Err(ScenarioError::UnknownName {
                        what: "latency kind",
                        name: other.into(),
                    })
                }
            }
        }
    };
    let drift = match a.opt_table("drift")? {
        None => defaults.drift,
        Some(t) => {
            let d = Ctx { table: t, name: "async.drift" };
            match d.req_str("kind")? {
                "synced" => {
                    d.check_keys(&["kind"])?;
                    DriftSpec::Synced
                }
                "skew" => {
                    d.check_keys(&["kind", "spread"])?;
                    DriftSpec::Skew { spread: d.req_f64("spread")? }
                }
                "bernoulli" => {
                    d.check_keys(&["kind", "skip_prob"])?;
                    DriftSpec::Bernoulli { skip_prob: d.req_f64("skip_prob")? }
                }
                "random-walk" => {
                    d.check_keys(&["kind", "step_prob"])?;
                    DriftSpec::RandomWalk { step_prob: d.req_f64("step_prob")? }
                }
                other => {
                    return Err(ScenarioError::UnknownName {
                        what: "drift kind",
                        name: other.into(),
                    })
                }
            }
        }
    };
    // `shards` is an integer count or the string "auto".
    let shards = match a.table.get("shards") {
        None => None,
        Some(v) => match (v.as_integer(), v.as_str()) {
            (Some(_), _) => Some(ShardsSpec::Count(a.to_u64("shards", v)?)),
            (None, Some("auto")) => Some(ShardsSpec::Auto),
            (None, Some(other)) => {
                return Err(ScenarioError::Invalid {
                    key: "async.shards".into(),
                    reason: format!("expected a shard count or \"auto\", got \"{other}\""),
                })
            }
            (None, None) => {
                return Err(ScenarioError::Invalid {
                    key: "async.shards".into(),
                    reason: format!("expected an integer or \"auto\", got {v:?}"),
                })
            }
        },
    };
    Ok(AsyncSpec {
        interval_ms: a.opt_u64("interval_ms")?.unwrap_or(defaults.interval_ms),
        jitter: a.opt_f64("jitter")?.unwrap_or(defaults.jitter),
        latency,
        drift,
        sample_every_ms: a.opt_u64("sample_every_ms")?,
        shards,
    })
}

fn parse_env(table: &Table) -> Result<EnvSpec, ScenarioError> {
    let env = Ctx { table, name: "env" };
    match env.req_str("kind")? {
        "uniform" => {
            env.check_keys(&["kind", "broadcast_fanout"])?;
            Ok(EnvSpec::Uniform {
                broadcast_fanout: env.opt_u64("broadcast_fanout")?.map(|v| v as usize),
            })
        }
        "spatial" => {
            env.check_keys(&["kind", "max_walk"])?;
            Ok(EnvSpec::Spatial { max_walk: env.opt_u64("max_walk")?.map(|v| v as u32) })
        }
        "clustered" => {
            env.check_keys(&["kind", "clusters", "migration", "bridge", "events"])?;
            let events = match env.opt_array("events")? {
                None => Vec::new(),
                Some(items) => items
                    .iter()
                    .map(|item| {
                        let t = item.as_table().ok_or(ScenarioError::Type {
                            key: "env.events".into(),
                            expected: "array of tables",
                            found: item.type_name(),
                        })?;
                        parse_event(t)
                    })
                    .collect::<Result<_, _>>()?,
            };
            Ok(EnvSpec::Clustered {
                clusters: env.req_u64("clusters")? as u32,
                migration: env.opt_f64("migration")?.unwrap_or(0.0),
                bridge: env.opt_f64("bridge")?.unwrap_or(0.0),
                events,
            })
        }
        "trace" => {
            env.check_keys(&["kind", "dataset"])?;
            let idx = env.req_u64("dataset")?;
            let dataset = Dataset::from_index(idx as usize).ok_or(ScenarioError::Invalid {
                key: "env.dataset".into(),
                reason: format!("no dataset {idx} (choose 1, 2, or 3)"),
            })?;
            Ok(EnvSpec::Trace { dataset })
        }
        other => Err(ScenarioError::UnknownName { what: "environment kind", name: other.into() }),
    }
}

fn parse_event(table: &Table) -> Result<MobilityEvent, ScenarioError> {
    let ev = Ctx { table, name: "env.events" };
    let round = ev.req_u64("round")?;
    let kind = match ev.req_str("kind")? {
        "burst" => {
            ev.check_keys(&["round", "kind", "fraction"])?;
            MobilityKind::Burst { fraction: ev.req_f64("fraction")? }
        }
        "merge" => {
            ev.check_keys(&["round", "kind", "from", "into"])?;
            MobilityKind::Merge {
                from: ev.req_u64("from")? as u32,
                into: ev.req_u64("into")? as u32,
            }
        }
        "split" => {
            ev.check_keys(&["round", "kind", "from", "into"])?;
            MobilityKind::Split {
                from: ev.req_u64("from")? as u32,
                into: ev.req_u64("into")? as u32,
            }
        }
        other => {
            return Err(ScenarioError::UnknownName {
                what: "mobility event kind",
                name: other.into(),
            })
        }
    };
    Ok(MobilityEvent { round, kind })
}

fn parse_values(table: &Table) -> Result<ValueSpec, ScenarioError> {
    let values = Ctx { table, name: "values" };
    match values.req_str("kind")? {
        "paper" => {
            values.check_keys(&["kind"])?;
            Ok(ValueSpec::Paper)
        }
        "constant" => {
            values.check_keys(&["kind", "value"])?;
            Ok(ValueSpec::Constant(values.req_f64("value")?))
        }
        other => Err(ScenarioError::UnknownName { what: "value kind", name: other.into() }),
    }
}

fn parse_protocol(table: &Table) -> Result<ProtocolSpec, ScenarioError> {
    let p = Ctx { table, name: "protocol" };
    match p.req_str("name")? {
        "push-sum" => {
            p.check_keys(&["name"])?;
            Ok(ProtocolSpec::PushSum)
        }
        "push-sum-revert" => {
            p.check_keys(&["name", "lambda"])?;
            Ok(ProtocolSpec::PushSumRevert { lambda: p.req_f64("lambda")? })
        }
        "full-transfer" => {
            p.check_keys(&["name", "lambda", "parcels", "window"])?;
            Ok(ProtocolSpec::FullTransfer {
                lambda: p.req_f64("lambda")?,
                parcels: p.opt_u64("parcels")?.unwrap_or(4) as u32,
                window: p.opt_u64("window")?.unwrap_or(3) as usize,
            })
        }
        "adaptive-revert" => {
            p.check_keys(&["name", "lambda"])?;
            Ok(ProtocolSpec::AdaptiveRevert { lambda: p.req_f64("lambda")? })
        }
        "epoch-push-sum" => {
            p.check_keys(&["name", "epoch_len", "settle_len", "drift_prob", "clique_drift"])?;
            let clique_drift = match p.opt_table("clique_drift")? {
                None => None,
                Some(t) => {
                    let cd = Ctx { table: t, name: "protocol.clique_drift" };
                    cd.check_keys(&["clusters", "magnitude"])?;
                    Some(CliqueDrift {
                        clusters: cd.req_u64("clusters")? as u32,
                        magnitude: cd.req_f64("magnitude")?,
                    })
                }
            };
            Ok(ProtocolSpec::EpochPushSum {
                epoch_len: p.req_u64("epoch_len")?,
                settle_len: p.opt_u64("settle_len")?,
                drift_prob: p.opt_f64("drift_prob")?.unwrap_or(0.0),
                clique_drift,
            })
        }
        "count-sketch" => {
            p.check_keys(&["name", "multiplier", "hash_seed_xor"])?;
            Ok(ProtocolSpec::CountSketch {
                multiplier: p.opt_u64("multiplier")?.unwrap_or(1),
                hash_seed_xor: p.opt_u64("hash_seed_xor")?.unwrap_or(0),
            })
        }
        "count-sketch-reset" => {
            p.check_keys(&["name", "cutoff", "push_pull", "multiplier", "hash_seed_xor"])?;
            Ok(ProtocolSpec::CountSketchReset {
                cutoff: parse_cutoff(&p)?,
                push_pull: p.opt_bool("push_pull")?.unwrap_or(true),
                multiplier: p.opt_u64("multiplier")?.unwrap_or(1),
                hash_seed_xor: p.opt_u64("hash_seed_xor")?.unwrap_or(0),
            })
        }
        "invert-average" => {
            p.check_keys(&["name", "lambda", "hash_seed_xor"])?;
            Ok(ProtocolSpec::InvertAverage {
                lambda: p.req_f64("lambda")?,
                hash_seed_xor: p.opt_u64("hash_seed_xor")?.unwrap_or(0),
            })
        }
        "tag-tree" => {
            p.check_keys(&["name", "child_timeout"])?;
            Ok(ProtocolSpec::TagTree { child_timeout: p.opt_u64("child_timeout")?.unwrap_or(3) })
        }
        "extremum" => {
            p.check_keys(&["name", "mode", "ttl"])?;
            let mode = match p.req_str("mode")? {
                "max" => ExtremumMode::Max,
                "min" => ExtremumMode::Min,
                other => {
                    return Err(ScenarioError::UnknownName {
                        what: "extremum mode",
                        name: other.into(),
                    })
                }
            };
            Ok(ProtocolSpec::Extremum { mode, ttl: p.opt_u64("ttl")?.map(|v| v as u32) })
        }
        "moments" => {
            p.check_keys(&["name", "lambda"])?;
            Ok(ProtocolSpec::Moments { lambda: p.req_f64("lambda")? })
        }
        "histogram" => {
            p.check_keys(&["name", "lo", "hi", "buckets", "lambda"])?;
            Ok(ProtocolSpec::Histogram {
                lo: p.req_f64("lo")?,
                hi: p.req_f64("hi")?,
                buckets: p.req_u64("buckets")? as u32,
                lambda: p.req_f64("lambda")?,
            })
        }
        other => Err(ScenarioError::UnknownName { what: "protocol", name: other.into() }),
    }
}

/// `cutoff` accepts `"paper"` / `"infinite"` / `"slow"`, or a table:
/// `{ scale = 2.0 }` (paper cutoff scaled) or `{ base = 7.0, slope = 0.25 }`.
fn parse_cutoff(p: &Ctx<'_>) -> Result<Cutoff, ScenarioError> {
    let Some(v) = p.table.get("cutoff") else { return Ok(Cutoff::paper_uniform()) };
    if let Some(s) = v.as_str() {
        return match s {
            "paper" => Ok(Cutoff::paper_uniform()),
            "infinite" => Ok(Cutoff::Infinite),
            "slow" => Ok(Cutoff::slow()),
            other => Err(ScenarioError::UnknownName { what: "cutoff", name: other.into() }),
        };
    }
    let Some(t) = v.as_table() else {
        return Err(ScenarioError::Type {
            key: "protocol.cutoff".into(),
            expected: "string or table",
            found: v.type_name(),
        });
    };
    let c = Ctx { table: t, name: "protocol.cutoff" };
    if t.contains_key("scale") {
        c.check_keys(&["scale"])?;
        Ok(Cutoff::paper_uniform().scaled(c.req_f64("scale")?))
    } else {
        c.check_keys(&["base", "slope"])?;
        Ok(Cutoff::Linear { base: c.req_f64("base")?, slope: c.req_f64("slope")? })
    }
}

fn parse_failure(table: &Table) -> Result<FailureSpec, ScenarioError> {
    let f = Ctx { table, name: "failure" };
    match f.req_str("kind")? {
        "at-round" => {
            f.check_keys(&["kind", "round", "mode", "fraction", "graceful"])?;
            let mode: FailureMode = match f.opt_str("mode")? {
                None => FailureMode::Random,
                Some(s) => s.parse().map_err(|_| ScenarioError::UnknownName {
                    what: "failure mode",
                    name: s.into(),
                })?,
            };
            Ok(FailureSpec::AtRound {
                round: f.req_u64("round")?,
                mode,
                fraction: f.req_f64("fraction")?,
                graceful: f.opt_bool("graceful")?.unwrap_or(false),
            })
        }
        "churn" => {
            f.check_keys(&["kind", "start", "leave_per_round", "join_per_round"])?;
            Ok(FailureSpec::Churn {
                start: f.opt_u64("start")?.unwrap_or(0),
                leave_per_round: f.req_f64("leave_per_round")?,
                join_per_round: f.req_f64("join_per_round")?,
            })
        }
        other => Err(ScenarioError::UnknownName { what: "failure kind", name: other.into() }),
    }
}

/// One `[[partition]]` table: `at_round`, optional `heal_at`, and an
/// `islands` array of symbolic island strings (see [`parse_island`]).
fn parse_partition(table: &Table) -> Result<PartitionEvent, ScenarioError> {
    let p = Ctx { table, name: "partition" };
    p.check_keys(&["at_round", "heal_at", "islands"])?;
    let islands = p
        .opt_array("islands")?
        .ok_or(ScenarioError::Missing { table: "partition", key: "islands" })?
        .iter()
        .map(|item| {
            let s = item.as_str().ok_or(ScenarioError::Type {
                key: "partition.islands".into(),
                expected: "array of strings",
                found: item.type_name(),
            })?;
            parse_island(s)
        })
        .collect::<Result<_, _>>()?;
    Ok(PartitionEvent { at_round: p.req_u64("at_round")?, heal_at: p.opt_u64("heal_at")?, islands })
}

/// The island micro-syntax: `"nodes:LO..HI"` (half-open id range),
/// `"cliques:A,B,…"` (clustered clique ids), or `"region:X0,Y0,X1,Y1"`
/// (inclusive spatial grid box).
fn parse_island(s: &str) -> Result<Island, ScenarioError> {
    let invalid = |reason: String| ScenarioError::Invalid {
        key: "partition.islands".into(),
        reason: format!("island `{s}`: {reason}"),
    };
    let (kind, body) = s
        .split_once(':')
        .ok_or_else(|| invalid("expected `nodes:…`, `cliques:…`, or `region:…`".into()))?;
    let num = |field: &str| {
        field.trim().parse::<u32>().map_err(|_| invalid(format!("`{field}` is not an integer")))
    };
    match kind {
        "nodes" => {
            let (lo, hi) = body
                .split_once("..")
                .ok_or_else(|| invalid("expected a half-open range `lo..hi`".into()))?;
            Ok(Island::Range { lo: num(lo)?, hi: num(hi)? })
        }
        "cliques" => Ok(Island::Cliques(body.split(',').map(num).collect::<Result<Vec<_>, _>>()?)),
        "region" => {
            let parts = body.split(',').map(num).collect::<Result<Vec<_>, _>>()?;
            let [x0, y0, x1, y1] = parts[..] else {
                return Err(invalid("expected four coordinates `x0,y0,x1,y1`".into()));
            };
            Ok(Island::Region { x0, y0, x1, y1 })
        }
        other => Err(ScenarioError::UnknownName { what: "island kind", name: other.into() }),
    }
}

/// The `[adversary]` table. Each attack takes exactly the keys it uses:
/// `mass-inflation` a `factor`, `sketch-corruption` a `cells` count,
/// `stale-epoch-replay` nothing extra.
fn parse_adversary(table: &Table) -> Result<AdversarySpec, ScenarioError> {
    let a = Ctx { table, name: "adversary" };
    let attack = match a.req_str("attack")? {
        "mass-inflation" => {
            a.check_keys(&["attack", "fraction", "from_round", "factor"])?;
            Attack::MassInflation { factor: a.req_f64("factor")? }
        }
        "stale-epoch-replay" => {
            a.check_keys(&["attack", "fraction", "from_round"])?;
            Attack::StaleEpochReplay
        }
        "sketch-corruption" => {
            a.check_keys(&["attack", "fraction", "from_round", "cells"])?;
            Attack::SketchCorruption { cells: a.req_u64("cells")? as u32 }
        }
        other => return Err(ScenarioError::UnknownName { what: "attack", name: other.into() }),
    };
    Ok(AdversarySpec {
        attack,
        fraction: a.req_f64("fraction")?,
        from_round: a.opt_u64("from_round")?.unwrap_or(0),
    })
}

fn parse_output(table: &Table) -> Result<OutputSpec, ScenarioError> {
    let o = Ctx { table, name: "output" };
    o.check_keys(&["metrics", "report", "probe"])?;
    let metrics = match o.opt_array("metrics")? {
        None => OutputSpec::default().metrics,
        Some(items) => items
            .iter()
            .map(|item| {
                let name = item.as_str().ok_or(ScenarioError::Type {
                    key: "output.metrics".into(),
                    expected: "array of strings",
                    found: item.type_name(),
                })?;
                Metric::from_name(name)
                    .ok_or(ScenarioError::UnknownName { what: "metric", name: name.into() })
            })
            .collect::<Result<_, _>>()?,
    };
    let report = match o.opt_str("report")? {
        None | Some("series") => Report::Series,
        Some("counter-cdf") => Report::CounterCdf,
        Some(other) => {
            return Err(ScenarioError::UnknownName { what: "report", name: other.into() })
        }
    };
    let probe = match o.opt_str("probe")? {
        None => None,
        Some("mass-weight") => Some(Probe::MassWeight),
        Some(other) => {
            return Err(ScenarioError::UnknownName { what: "probe", name: other.into() })
        }
    };
    Ok(OutputSpec { metrics, report, probe })
}

fn parse_sweep(table: &Table) -> Result<Sweep, ScenarioError> {
    let s = Ctx { table, name: "sweep" };
    s.check_keys(&["axis", "values"])?;
    let axis = match s.req_str("axis")? {
        "lambda" => SweepAxis::Lambda,
        "n" => SweepAxis::N,
        other => return Err(ScenarioError::UnknownName { what: "sweep axis", name: other.into() }),
    };
    let values = s
        .opt_array("values")?
        .ok_or(ScenarioError::Missing { table: "sweep", key: "values" })?
        .iter()
        .map(|v| {
            v.as_float().ok_or(ScenarioError::Type {
                key: "sweep.values".into(),
                expected: "array of numbers",
                found: v.type_name(),
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(Sweep { axis, values })
}
