//! The scenario specification: a validated, declarative description of one
//! experiment — environment, protocol, population, failure plan, and
//! outputs — that both the TOML front end and the hard-coded figure
//! modules construct.

use crate::error::ScenarioError;
use dynagg_core::adversary::Attack;
use dynagg_core::config::{FullTransferConfig, RevertConfig};
use dynagg_core::epoch::DriftModel;
use dynagg_core::extremum::ExtremumMode;
use dynagg_sim::env::{MobilityEvent, MobilityKind};
use dynagg_sim::metrics::RoundStats;
use dynagg_sim::partition::{self, PartitionEvent, PartitionTable, TopologyInfo};
use dynagg_sim::{FailureSpec, Truth};
use dynagg_sketch::cutoff::Cutoff;
use dynagg_trace::datasets::Dataset;

/// Which simulation engine drives the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Message-passing gossip ([`dynagg_sim::runner::Simulation`]).
    #[default]
    Push,
    /// Atomic push/pull exchanges
    /// ([`dynagg_sim::runner::PairwiseSimulation`]); only the averaging
    /// protocols implement it.
    Pairwise,
    /// Asynchronous discrete-event execution
    /// ([`dynagg_node::AsyncNet`]): no global rounds — every node owns a
    /// jittered, possibly drifting timer; frames travel over links with
    /// latency and loss; estimates are sampled at a wall-clock cadence.
    /// Configured by the `[async]` table ([`AsyncSpec`]). Runs every
    /// environment: peers come from the same membership/topology layer
    /// the lockstep engines sample from, with topology changes (clique
    /// mobility, trace replay) applied at nominal round boundaries.
    Async,
}

/// How the `wire_bytes` column is accounted (the top-level `wire` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireAccounting {
    /// Price every message once per round from a fresh node's encoded
    /// size ([`crate::registry`]'s `wire_cost`): cheap, deterministic,
    /// but blind to how payloads grow as counters populate.
    #[default]
    Priced,
    /// Measure each message's actual encoded size (codec bytes + frame
    /// header) at emission time, via the version-stamped encode memo.
    /// Lockstep engines only: the async engine already measures real
    /// frames, and the pairwise engine exchanges state by reference.
    Measured,
}

/// Per-link latency distribution for the async engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencySpec {
    /// Every frame takes exactly `ms`.
    Constant {
        /// One-way delay in milliseconds.
        ms: u64,
    },
    /// Uniform in `[lo_ms, hi_ms]`.
    Uniform {
        /// Minimum delay.
        lo_ms: u64,
        /// Maximum delay (inclusive).
        hi_ms: u64,
    },
    /// Exponentially distributed (heavy-tailed) with the given mean.
    Exponential {
        /// Mean delay in milliseconds.
        mean_ms: f64,
    },
}

/// How node clocks drift under the async engine (the per-node incarnation
/// of [`dynagg_core::epoch::DriftModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftSpec {
    /// All crystals run at the nominal rate.
    Synced,
    /// Constant-skew spread: node `i` of `n` runs at
    /// `1 + spread · (2i/(n−1) − 1)` ticks per interval, so crystals span
    /// `±spread` across the population (the skewed-clock workload).
    Skew {
        /// Half-width of the rate spread, in `[0, 1)`.
        spread: f64,
    },
    /// Every node misses a tick with this probability (slept radios).
    Bernoulli {
        /// Per-tick skip probability, in `[0, 1]`.
        skip_prob: f64,
    },
    /// Unbiased random-walk jitter on every clock.
    RandomWalk {
        /// Per-tick jitter probability, in `[0, 1]`.
        step_prob: f64,
    },
}

impl DriftSpec {
    /// The concrete [`DriftModel`] of node `id` in a population of `n`.
    /// Ids are taken modulo `n`, so churn-joined nodes (whose ids grow
    /// past the initial population) land back inside the documented
    /// `±spread` span instead of extrapolating beyond it.
    pub fn model_for(self, id: u32, n: usize) -> DriftModel {
        match self {
            DriftSpec::Synced => DriftModel::Synced,
            DriftSpec::Skew { spread } => {
                let pos = (id as usize % n.max(1)) as f64;
                let centered = if n <= 1 { 0.0 } else { 2.0 * pos / (n as f64 - 1.0) - 1.0 };
                DriftModel::ConstantSkew { rate: 1.0 + spread * centered }
            }
            DriftSpec::Bernoulli { skip_prob } => DriftModel::Bernoulli { skip_prob },
            DriftSpec::RandomWalk { step_prob } => DriftModel::RandomWalk { step_prob },
        }
    }
}

impl LatencySpec {
    /// The distribution's lower bound in milliseconds — the sharded
    /// engine's conservative *lookahead*. Zero (exponential latency, or a
    /// zero-delay constant/uniform) means no safe parallel window exists
    /// and the run must stay on the sequential engine.
    pub fn min_lookahead_ms(self) -> u64 {
        match self {
            LatencySpec::Constant { ms } => ms,
            LatencySpec::Uniform { lo_ms, .. } => lo_ms,
            LatencySpec::Exponential { .. } => 0,
        }
    }
}

/// The `shards` key of the `[async]` table: how many parallel shards the
/// asynchronous engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardsSpec {
    /// A fixed shard count. `1` (like an absent key) runs the sequential
    /// engine; `≥ 2` runs the sharded engine, whose results are
    /// bit-identical at *any* count `≥ 2`.
    Count(u64),
    /// `shards = "auto"`: size the shard pool from the machine's worker
    /// budget (`DYNAGG_THREADS` or the core count), clamped to `[2, n]`.
    /// Because the sharded engine is shard-count invariant, the digest
    /// stays machine-independent even though the count is not.
    Auto,
}

/// Why a `shards` request fell back to the sequential engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardFallback {
    /// The latency model has no positive lower bound, so the conservative
    /// window protocol has zero lookahead. `shards = "auto"` degrades to
    /// one shard with this note; an explicit count ≥ 2 is a validation
    /// error instead.
    ZeroLookahead {
        /// The offending latency model.
        latency: LatencySpec,
    },
}

impl std::fmt::Display for ShardFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFallback::ZeroLookahead { latency } => write!(
                f,
                "shards = \"auto\" fell back to the sequential engine: latency {latency:?} has \
                 no positive lower bound, so the conservative window protocol has zero lookahead"
            ),
        }
    }
}

/// The `[async]` table: asynchronous-engine timing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncSpec {
    /// Nominal milliseconds between a node's gossip rounds.
    pub interval_ms: u64,
    /// Per-node interval jitter as a fraction of `interval_ms`, in
    /// `[0, 1)` (drawn once per node).
    pub jitter: f64,
    /// Per-link latency distribution.
    pub latency: LatencySpec,
    /// Clock-drift assignment.
    pub drift: DriftSpec,
    /// Estimate-sampling cadence (defaults to `interval_ms`, producing
    /// one series row per nominal round, like the lockstep engines).
    pub sample_every_ms: Option<u64>,
    /// Shard count for parallel execution (absent = sequential).
    pub shards: Option<ShardsSpec>,
}

impl Default for AsyncSpec {
    /// 100 ms rounds, ±5 % jitter, 10 ms constant latency, synced clocks,
    /// one sample per nominal round, sequential execution.
    fn default() -> Self {
        Self {
            interval_ms: 100,
            jitter: 0.05,
            latency: LatencySpec::Constant { ms: 10 },
            drift: DriftSpec::Synced,
            sample_every_ms: None,
            shards: None,
        }
    }
}

/// Which gossip environment partners are sampled from (paper §V).
#[derive(Debug, Clone, PartialEq)]
pub enum EnvSpec {
    /// Full connectivity (the paper's 100 000-host setting).
    Uniform {
        /// Broadcast-set size for tree-style protocols (default 8).
        broadcast_fanout: Option<usize>,
    },
    /// Grid adjacency with `1/d²` random-walk long links.
    Spatial {
        /// Random-walk hop cap override.
        max_walk: Option<u32>,
    },
    /// §II-C's mostly isolated cliques.
    Clustered {
        /// Number of cliques.
        clusters: u32,
        /// Per-round per-host migration probability.
        migration: f64,
        /// Probability a sampled partner crosses cliques.
        bridge: f64,
        /// Scheduled topology events (bursts, merges, splits).
        events: Vec<MobilityEvent>,
    },
    /// Adjacency replayed from a synthetic Haggle-like contact trace
    /// (Fig. 11). Population and default horizon come from the dataset.
    Trace {
        /// Which bundled dataset.
        dataset: Dataset,
    },
}

/// How hosts' initial values are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ValueSpec {
    /// Uniform in `[0, 100)` — "values are selected uniformly in the
    /// range [0, 100)" (§V).
    #[default]
    Paper,
    /// Every host holds the same value (counting experiments use 1.0).
    Constant(f64),
}

/// Per-clique clock divergence for the epoch protocol: host `id`'s clique
/// is `id % clusters` (matching [`EnvSpec::Clustered`]'s round-robin
/// assignment); clique `k` starts `k · round(magnitude · epoch_len)` ticks
/// in and its crystal runs at `1 + 0.2 · magnitude · centered(k)` ticks
/// per round. This is the epoch-disruption sweep's drift model, made
/// declarative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CliqueDrift {
    /// Cliques the drift pattern spans (≥ 2).
    pub clusters: u32,
    /// Drift magnitude `d`: 0 = all clocks agree; 1 = neighboring cliques
    /// start a full epoch apart and crystals span ±20 %.
    pub magnitude: f64,
}

impl CliqueDrift {
    /// The clock rate of a host initially in clique `k`.
    pub fn rate_of(&self, clique: u32) -> f64 {
        let centered = 2.0 * f64::from(clique) / f64::from(self.clusters - 1) - 1.0;
        1.0 + 0.2 * self.magnitude * centered
    }

    /// The initial clock offset of a host in clique `k`.
    pub fn offset_of(&self, clique: u32, epoch_len: u64) -> u64 {
        let step = (self.magnitude * epoch_len as f64).round() as u64;
        u64::from(clique) * step
    }
}

/// The `[adversary]` table: install a Byzantine attack on part of the
/// population. The first `⌈fraction · n⌉` host ids run their protocol
/// through [`dynagg_core::adversary::Adversarial`], corrupting every
/// outgoing message once `from_round` passes; the rest stay honest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarySpec {
    /// Which semantic corruption malicious hosts apply.
    pub attack: Attack,
    /// Fraction of the population that is malicious, in `(0, 1]`.
    pub fraction: f64,
    /// First round at which the attack is live (default 0).
    pub from_round: u64,
}

/// The topology facts symbolic partition islands resolve against, read
/// off an [`EnvSpec`] the way [`crate::registry`] will build it.
pub(crate) fn topology_info(env: &EnvSpec, n: usize) -> TopologyInfo {
    match env {
        EnvSpec::Clustered { clusters, .. } => {
            TopologyInfo { clusters: Some(*clusters), side: None }
        }
        // Matches `SpatialEnv::for_nodes`: a ⌈√n⌉-sided row-major grid.
        EnvSpec::Spatial { .. } => {
            TopologyInfo { clusters: None, side: Some(((n as f64).sqrt().ceil() as u32).max(1)) }
        }
        _ => TopologyInfo::default(),
    }
}

/// Which protocol every host runs, with its configuration. One variant per
/// protocol in `dynagg-core`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolSpec {
    /// Static Push-Sum averaging (Fig. 1).
    PushSum,
    /// Push-Sum-Revert (§III).
    PushSumRevert {
        /// Reversion constant λ ∈ [0, 1].
        lambda: f64,
    },
    /// Push-Sum-Revert + Full-Transfer (§III-A).
    FullTransfer {
        /// Reversion constant λ.
        lambda: f64,
        /// Parcel count N (paper: 4).
        parcels: u32,
        /// Estimate window T (paper: 3).
        window: usize,
    },
    /// Adaptive λ/2-per-message reversion (§III-A).
    AdaptiveRevert {
        /// Base reversion constant λ.
        lambda: f64,
    },
    /// Epoch-reset baseline with the §II-C restart/settling lifecycle.
    EpochPushSum {
        /// Rounds per epoch.
        epoch_len: u64,
        /// Settling-window override (default `max(1, epoch_len / 4)`).
        settle_len: Option<u64>,
        /// Bernoulli missed-tick probability (0 = synced clock).
        drift_prob: f64,
        /// Per-clique constant-skew drift (the epoch-disruption model).
        clique_drift: Option<CliqueDrift>,
    },
    /// Static Sketch-Count (Fig. 2), counting hosts (× `multiplier`
    /// identifiers per host — `> 1` models the multi-insertion summation
    /// load of §IV-B, sizing the sketch for `n × multiplier`).
    CountSketch {
        /// Identifiers registered per host (default 1: plain counting).
        multiplier: u64,
        /// XORed into the master seed to derive the shared hash seed.
        hash_seed_xor: u64,
    },
    /// Count-Sketch-Reset (§IV-A), counting hosts (× `multiplier` ids).
    CountSketchReset {
        /// Bit-expiry cutoff.
        cutoff: Cutoff,
        /// Push-pull message exchange (paper default: on).
        push_pull: bool,
        /// Identifiers sourced per host (Fig. 11 §V-B uses 100).
        multiplier: u64,
        /// XORed into the master seed to derive the shared hash seed.
        hash_seed_xor: u64,
    },
    /// Invert-Average: sum = average × count (§IV-B).
    InvertAverage {
        /// Reversion constant λ for the averaging half.
        lambda: f64,
        /// XORed into the master seed for the counting half's hash seed.
        hash_seed_xor: u64,
    },
    /// TAG-style spanning-tree baseline (related work §VI); host 0 is the
    /// root.
    TagTree {
        /// Rounds a silent child's report survives.
        child_timeout: u64,
    },
    /// Dynamic max/min via age-expiring champions.
    Extremum {
        /// Track the maximum or the minimum.
        mode: ExtremumMode,
        /// Champion time-to-live override (default: uniform-gossip TTL).
        ttl: Option<u32>,
    },
    /// Running mean + variance/stddev (estimate = stddev).
    Moments {
        /// Reversion constant λ.
        lambda: f64,
    },
    /// Value histograms via vector mass.
    Histogram {
        /// Inclusive domain lower bound.
        lo: f64,
        /// Exclusive domain upper bound.
        hi: f64,
        /// Equal-width bucket count.
        buckets: u32,
        /// Reversion constant λ.
        lambda: f64,
    },
}

impl ProtocolSpec {
    /// The registry name (what `[protocol] name = "…"` says).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::PushSum => "push-sum",
            ProtocolSpec::PushSumRevert { .. } => "push-sum-revert",
            ProtocolSpec::FullTransfer { .. } => "full-transfer",
            ProtocolSpec::AdaptiveRevert { .. } => "adaptive-revert",
            ProtocolSpec::EpochPushSum { .. } => "epoch-push-sum",
            ProtocolSpec::CountSketch { .. } => "count-sketch",
            ProtocolSpec::CountSketchReset { .. } => "count-sketch-reset",
            ProtocolSpec::InvertAverage { .. } => "invert-average",
            ProtocolSpec::TagTree { .. } => "tag-tree",
            ProtocolSpec::Extremum { .. } => "extremum",
            ProtocolSpec::Moments { .. } => "moments",
            ProtocolSpec::Histogram { .. } => "histogram",
        }
    }

    /// Does this protocol implement the atomic pairwise engine?
    pub fn supports_pairwise(&self) -> bool {
        matches!(
            self,
            ProtocolSpec::PushSum
                | ProtocolSpec::PushSumRevert { .. }
                | ProtocolSpec::Moments { .. }
        )
    }

    /// The reversion constant, for protocols that have one.
    pub fn lambda_mut(&mut self) -> Option<&mut f64> {
        match self {
            ProtocolSpec::PushSumRevert { lambda }
            | ProtocolSpec::FullTransfer { lambda, .. }
            | ProtocolSpec::AdaptiveRevert { lambda }
            | ProtocolSpec::InvertAverage { lambda, .. }
            | ProtocolSpec::Moments { lambda }
            | ProtocolSpec::Histogram { lambda, .. } => Some(lambda),
            _ => None,
        }
    }
}

/// One per-round statistic a scenario can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Live hosts.
    Alive,
    /// The correct value.
    Truth,
    /// Mean estimate over hosts with one.
    MeanEstimate,
    /// √(mean squared error) — the paper's y-axis.
    Stddev,
    /// Mean absolute error.
    MeanAbsErr,
    /// Max absolute error.
    MaxAbsErr,
    /// Hosts with a defined estimate.
    Defined,
    /// Messages sent.
    Messages,
    /// Payload bytes sent (raw in-memory accounting, engine-comparable).
    Bytes,
    /// Wire bytes sent (frame header + codec): measured frames under the
    /// async engine; under the lockstep engines, `registry::wire_cost`
    /// pricing by default or per-message measurement with
    /// `wire = "measured"` ([`WireAccounting::Measured`]).
    WireBytes,
    /// Mean experienced group size (trace runs).
    MeanGroupSize,
    /// Hosts inside a settling window.
    Settling,
    /// Cumulative disruptive restarts.
    Disruptions,
    /// Global mass-conservation drift: mean of every live host's audited
    /// Push-Sum mass minus the true mean. Exactly 0 under honest lockstep
    /// runs (§III conservation); jitters by ~one round's in-flight mass
    /// under the async engine; drifts without bound under a
    /// mass-inflation adversary. 0 for protocols that expose no mass.
    MassAudit,
    /// Network islands this round (1 when no partition is active).
    Islands,
}

impl Metric {
    /// All metrics, in CSV column order.
    pub const ALL: [Metric; 15] = [
        Metric::Alive,
        Metric::Truth,
        Metric::MeanEstimate,
        Metric::Stddev,
        Metric::MeanAbsErr,
        Metric::MaxAbsErr,
        Metric::Defined,
        Metric::Messages,
        Metric::Bytes,
        Metric::WireBytes,
        Metric::MeanGroupSize,
        Metric::Settling,
        Metric::Disruptions,
        Metric::MassAudit,
        Metric::Islands,
    ];

    /// The snake_case name scenario files use.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Alive => "alive",
            Metric::Truth => "truth",
            Metric::MeanEstimate => "mean_estimate",
            Metric::Stddev => "stddev",
            Metric::MeanAbsErr => "mean_abs_err",
            Metric::MaxAbsErr => "max_abs_err",
            Metric::Defined => "defined",
            Metric::Messages => "messages",
            Metric::Bytes => "bytes",
            Metric::WireBytes => "wire_bytes",
            Metric::MeanGroupSize => "mean_group_size",
            Metric::Settling => "settling",
            Metric::Disruptions => "disruptions",
            Metric::MassAudit => "mass_audit",
            Metric::Islands => "islands",
        }
    }

    /// Resolve a name from a scenario file.
    pub fn from_name(name: &str) -> Option<Self> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Read this metric out of one round's statistics.
    pub fn read(self, s: &RoundStats) -> f64 {
        match self {
            Metric::Alive => s.alive as f64,
            Metric::Truth => s.truth,
            Metric::MeanEstimate => s.mean_estimate,
            Metric::Stddev => s.stddev,
            Metric::MeanAbsErr => s.mean_abs_err,
            Metric::MaxAbsErr => s.max_abs_err,
            Metric::Defined => s.defined as f64,
            Metric::Messages => s.messages as f64,
            Metric::Bytes => s.bytes as f64,
            Metric::WireBytes => s.wire_bytes as f64,
            Metric::MeanGroupSize => s.mean_group_size,
            Metric::Settling => s.settling as f64,
            Metric::Disruptions => s.disruptions as f64,
            Metric::MassAudit => s.mass_audit,
            Metric::Islands => s.islands as f64,
        }
    }
}

/// What a scenario run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Report {
    /// The per-round metric series (the default).
    #[default]
    Series,
    /// Fig. 6's readout: the converged per-bit age-counter histograms
    /// (Count-Sketch-Reset under the push engine only).
    CounterCdf,
}

/// A post-run node-state reading the series cannot express — the probe
/// hook that lets protocol-internal ablations run through the registry
/// instead of bypassing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Total Push-Sum mass *weight* summed over live nodes after the last
    /// round (the loss ablation's numerical-collapse reading). Requires a
    /// mass-carrying averaging protocol.
    MassWeight,
}

impl Probe {
    /// The scenario-file name.
    pub fn name(self) -> &'static str {
        match self {
            Probe::MassWeight => "mass-weight",
        }
    }
}

/// Output selection: which metrics, and which report shape.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSpec {
    /// Per-round columns to emit (default: `stddev`).
    pub metrics: Vec<Metric>,
    /// Report shape.
    pub report: Report,
    /// Optional post-run node-state probe.
    pub probe: Option<Probe>,
}

impl Default for OutputSpec {
    fn default() -> Self {
        Self { metrics: vec![Metric::Stddev], report: Report::Series, probe: None }
    }
}

/// The parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// The protocol's reversion constant λ.
    Lambda,
    /// The population size.
    N,
}

impl SweepAxis {
    /// The scenario-file name.
    pub fn name(self) -> &'static str {
        match self {
            SweepAxis::Lambda => "lambda",
            SweepAxis::N => "n",
        }
    }
}

/// A one-axis parameter sweep: the scenario is instantiated once per
/// value, instances run as parallel trials (Figs. 6, 8, 10 are sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Which parameter varies.
    pub axis: SweepAxis,
    /// The values it takes (populations are given as integers).
    pub values: Vec<f64>,
}

/// A complete, declarative experiment description.
///
/// Construct programmatically with [`ScenarioSpec::new`] + struct update,
/// or from a TOML file via [`ScenarioSpec::from_toml_str`]. Run with
/// [`crate::run`] (full outcome) or [`crate::run_series`] (single series).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario id (table ids and CSV filenames derive from it).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Master seed; every run is a pure function of it.
    pub seed: u64,
    /// Population. Required except for trace environments, which derive
    /// it from the dataset (and reject an explicit `n`).
    pub n: Option<usize>,
    /// Rounds to simulate. Required except for trace environments, which
    /// default to the full trace horizon.
    pub rounds: Option<u64>,
    /// Independent trials (per-trial seeds derived as in
    /// [`dynagg_sim::par::trial_seed`]). Default 1.
    pub trials: u64,
    /// Engine flavour.
    pub engine: Engine,
    /// How `wire_bytes` is accounted (priced estimate vs. per-message
    /// measurement). Default [`WireAccounting::Priced`].
    pub wire: WireAccounting,
    /// Asynchronous-engine timing (the `[async]` table). Only meaningful
    /// — and only accepted — with [`Engine::Async`]; `None` under the
    /// async engine means [`AsyncSpec::default`].
    pub asynchrony: Option<AsyncSpec>,
    /// Gossip environment.
    pub env: EnvSpec,
    /// Initial host values.
    pub values: ValueSpec,
    /// Protocol and its configuration.
    pub protocol: ProtocolSpec,
    /// What estimates are measured against.
    pub truth: Truth,
    /// Failure plan.
    pub failure: FailureSpec,
    /// Independent per-message loss probability.
    pub loss: f64,
    /// Scheduled network partitions (the `[[partition]]` tables): at
    /// `at_round` the population splits into islands no traffic crosses;
    /// at `heal_at` it re-merges. Resolved against the population and
    /// topology by [`dynagg_sim::partition::resolve`].
    pub partitions: Vec<PartitionEvent>,
    /// Byzantine adversary installation (the `[adversary]` table).
    pub adversary: Option<AdversarySpec>,
    /// Output selection.
    pub output: OutputSpec,
    /// Optional parameter sweep.
    pub sweep: Option<Sweep>,
}

impl ScenarioSpec {
    /// A spec with the given essentials and default everything else
    /// (push engine, paper values, mean truth, no failure, no loss, one
    /// trial, stddev series output, no sweep).
    pub fn new(name: impl Into<String>, seed: u64, env: EnvSpec, protocol: ProtocolSpec) -> Self {
        Self {
            name: name.into(),
            description: String::new(),
            seed,
            n: None,
            rounds: None,
            trials: 1,
            engine: Engine::Push,
            wire: WireAccounting::default(),
            asynchrony: None,
            env,
            values: ValueSpec::Paper,
            protocol,
            truth: Truth::Mean,
            failure: FailureSpec::None,
            loss: 0.0,
            partitions: Vec::new(),
            adversary: None,
            output: OutputSpec::default(),
            sweep: None,
        }
    }

    /// Check every cross-field constraint. [`crate::run`] validates
    /// automatically; the CLI calls this up front so `--check` runs
    /// nothing.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid =
            |key: &str, reason: String| ScenarioError::Invalid { key: key.into(), reason };

        if self.name.is_empty() {
            return Err(invalid("name", "must be non-empty".into()));
        }
        if self.trials == 0 {
            return Err(invalid("trials", "must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.loss) || self.loss.is_nan() {
            return Err(invalid("loss", format!("probability {} outside [0, 1]", self.loss)));
        }

        let is_trace = matches!(self.env, EnvSpec::Trace { .. });
        match (is_trace, self.n) {
            (false, None) => return Err(ScenarioError::Missing { table: "", key: "n" }),
            (false, Some(0)) => return Err(invalid("n", "population must be positive".into())),
            (true, Some(_)) => {
                return Err(ScenarioError::Unsupported {
                    reason: "trace environments derive `n` from the dataset; drop the `n` key"
                        .into(),
                })
            }
            _ => {}
        }
        if !is_trace && self.rounds.is_none() {
            return Err(ScenarioError::Missing { table: "", key: "rounds" });
        }

        self.validate_env()?;
        self.validate_protocol()?;
        self.validate_failure()?;
        self.validate_async()?;
        self.validate_partitions()?;
        self.validate_adversary()?;

        if self.truth.needs_groups() && !is_trace {
            return Err(ScenarioError::Unsupported {
                reason: format!(
                    "truth `{:?}` needs per-group structure; only trace environments provide it",
                    self.truth
                ),
            });
        }
        if self.wire == WireAccounting::Measured && self.engine != Engine::Push {
            return Err(ScenarioError::Unsupported {
                reason: match self.engine {
                    Engine::Async => "wire = \"measured\" applies to lockstep rounds; the async \
                                      engine already reports measured frame bytes — drop the key"
                        .into(),
                    _ => "wire = \"measured\" is not implemented for the pairwise engine: \
                          exchanges pass state by reference and never encode; use engine = \
                          \"push\""
                        .into(),
                },
            });
        }
        if self.engine == Engine::Pairwise && !self.protocol.supports_pairwise() {
            return Err(ScenarioError::Unsupported {
                reason: format!(
                    "protocol `{}` has no pairwise exchange; use engine = \"push\"",
                    self.protocol.name()
                ),
            });
        }
        if self.output.report == Report::CounterCdf {
            if !matches!(self.protocol, ProtocolSpec::CountSketchReset { .. }) {
                return Err(ScenarioError::Unsupported {
                    reason: "report = \"counter-cdf\" reads age-counter matrices; it requires \
                             protocol `count-sketch-reset`"
                        .into(),
                });
            }
            match self.engine {
                Engine::Push => {}
                Engine::Async => {
                    // The sequential async engine owns every node and can
                    // read their age matrices after the run; the sharded
                    // engine moves nodes into worker threads.
                    let a = self.asynchrony.unwrap_or_default();
                    if matches!(a.shards, Some(ShardsSpec::Auto) | Some(ShardsSpec::Count(2..))) {
                        return Err(ScenarioError::Unsupported {
                            reason: "report = \"counter-cdf\" reads per-node age matrices, \
                                     which the sharded async engine distributes across worker \
                                     threads; use shards = 1 (or drop the key)"
                                .into(),
                        });
                    }
                }
                Engine::Pairwise => {
                    return Err(ScenarioError::Unsupported {
                        reason: "report = \"counter-cdf\" requires the push engine or the \
                                 sequential async engine"
                            .into(),
                    });
                }
            }
            if self.trials != 1 {
                return Err(ScenarioError::Unsupported {
                    reason: "report = \"counter-cdf\" supports a single trial".into(),
                });
            }
        }
        if self.output.metrics.is_empty() {
            return Err(invalid("output.metrics", "select at least one metric".into()));
        }
        if let Some(probe) = self.output.probe {
            match probe {
                Probe::MassWeight => {
                    if !matches!(
                        self.protocol,
                        ProtocolSpec::PushSum
                            | ProtocolSpec::PushSumRevert { .. }
                            | ProtocolSpec::AdaptiveRevert { .. }
                            | ProtocolSpec::FullTransfer { .. }
                    ) {
                        return Err(ScenarioError::Unsupported {
                            reason: format!(
                                "probe `mass-weight` reads Push-Sum mass; protocol `{}` \
                                 carries none",
                                self.protocol.name()
                            ),
                        });
                    }
                    if self.engine == Engine::Async {
                        return Err(ScenarioError::Unsupported {
                            reason: "probe `mass-weight` is not implemented for the async \
                                     engine; use engine = \"push\" or \"pairwise\""
                                .into(),
                        });
                    }
                }
            }
        }

        if let Some(sweep) = &self.sweep {
            if sweep.values.is_empty() {
                return Err(invalid("sweep.values", "must be non-empty".into()));
            }
            match sweep.axis {
                SweepAxis::Lambda => {
                    let mut probe = self.protocol;
                    if probe.lambda_mut().is_none() {
                        return Err(ScenarioError::Unsupported {
                            reason: format!(
                                "sweep axis `lambda` needs a protocol with a reversion \
                                 constant; `{}` has none",
                                self.protocol.name()
                            ),
                        });
                    }
                    for &v in &sweep.values {
                        RevertConfig::new(v)
                            .map_err(|e| invalid("sweep.values", format!("lambda {v}: {e:?}")))?;
                    }
                }
                SweepAxis::N => {
                    if is_trace {
                        return Err(ScenarioError::Unsupported {
                            reason: "sweep axis `n` cannot apply to a trace environment \
                                     (population comes from the dataset)"
                                .into(),
                        });
                    }
                    for &v in &sweep.values {
                        if v < 1.0 || v.fract() != 0.0 {
                            return Err(invalid(
                                "sweep.values",
                                format!("population {v} is not a positive integer"),
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_env(&self) -> Result<(), ScenarioError> {
        let invalid =
            |key: &str, reason: String| ScenarioError::Invalid { key: key.into(), reason };
        match &self.env {
            EnvSpec::Uniform { .. } | EnvSpec::Spatial { .. } | EnvSpec::Trace { .. } => Ok(()),
            EnvSpec::Clustered { clusters, migration, bridge, events } => {
                if *clusters == 0 {
                    return Err(invalid("env.clusters", "need at least one clique".into()));
                }
                for (key, p) in [("env.migration", *migration), ("env.bridge", *bridge)] {
                    if !(0.0..=1.0).contains(&p) || p.is_nan() {
                        return Err(invalid(key, format!("probability {p} outside [0, 1]")));
                    }
                }
                for e in events {
                    match e.kind {
                        MobilityKind::Burst { fraction } => {
                            if !(0.0..=1.0).contains(&fraction) || fraction.is_nan() {
                                return Err(invalid(
                                    "env.events",
                                    format!("burst fraction {fraction} outside [0, 1]"),
                                ));
                            }
                        }
                        MobilityKind::Merge { from, into } | MobilityKind::Split { from, into } => {
                            if from >= *clusters || into >= *clusters {
                                return Err(invalid(
                                    "env.events",
                                    format!(
                                        "event names clique {} but there are only {clusters}",
                                        from.max(into)
                                    ),
                                ));
                            }
                            if from == into {
                                return Err(invalid(
                                    "env.events",
                                    "merge/split needs two distinct cliques".into(),
                                ));
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn validate_protocol(&self) -> Result<(), ScenarioError> {
        let invalid =
            |key: &str, reason: String| ScenarioError::Invalid { key: key.into(), reason };
        let check_lambda = |lambda: f64| {
            RevertConfig::new(lambda)
                .map(|_| ())
                .map_err(|_| invalid("protocol.lambda", format!("lambda {lambda} outside [0, 1]")))
        };
        match self.protocol {
            ProtocolSpec::PushSum | ProtocolSpec::CountSketch { .. } => Ok(()),
            ProtocolSpec::PushSumRevert { lambda }
            | ProtocolSpec::AdaptiveRevert { lambda }
            | ProtocolSpec::Moments { lambda } => check_lambda(lambda),
            ProtocolSpec::FullTransfer { lambda, parcels, window } => {
                FullTransferConfig::new(lambda, parcels, window).map(|_| ()).map_err(|e| {
                    invalid("protocol", format!("full-transfer configuration rejected: {e:?}"))
                })
            }
            ProtocolSpec::EpochPushSum { epoch_len, drift_prob, clique_drift, .. } => {
                if epoch_len == 0 {
                    return Err(invalid("protocol.epoch_len", "must be at least 1".into()));
                }
                if !(0.0..=1.0).contains(&drift_prob) || drift_prob.is_nan() {
                    return Err(invalid(
                        "protocol.drift_prob",
                        format!("probability {drift_prob} outside [0, 1]"),
                    ));
                }
                if let Some(cd) = clique_drift {
                    if cd.clusters < 2 {
                        return Err(invalid(
                            "protocol.clique_drift",
                            "needs at least 2 cliques to diverge".into(),
                        ));
                    }
                    if !cd.magnitude.is_finite() || cd.magnitude < 0.0 {
                        return Err(invalid(
                            "protocol.clique_drift",
                            format!("magnitude {} must be finite and >= 0", cd.magnitude),
                        ));
                    }
                    // Drift cliques are defined as the clustered env's
                    // round-robin cliques; a mismatch would silently change
                    // what the drift pattern means.
                    match &self.env {
                        EnvSpec::Clustered { clusters, .. } => {
                            if *clusters != cd.clusters {
                                return Err(invalid(
                                    "protocol.clique_drift.clusters",
                                    format!(
                                        "must match env.clusters ({clusters}), got {}",
                                        cd.clusters
                                    ),
                                ));
                            }
                        }
                        _ => {
                            return Err(ScenarioError::Unsupported {
                                reason: "clique_drift assigns clocks by the clustered \
                                         environment's cliques; use kind = \"clustered\""
                                    .into(),
                            })
                        }
                    }
                }
                Ok(())
            }
            ProtocolSpec::CountSketchReset { multiplier, .. } => {
                if multiplier == 0 {
                    return Err(invalid("protocol.multiplier", "must be at least 1".into()));
                }
                Ok(())
            }
            ProtocolSpec::InvertAverage { lambda, .. } => check_lambda(lambda),
            ProtocolSpec::TagTree { child_timeout } => {
                if child_timeout == 0 {
                    return Err(invalid("protocol.child_timeout", "must be at least 1".into()));
                }
                Ok(())
            }
            ProtocolSpec::Extremum { ttl, .. } => {
                if ttl == Some(0) {
                    return Err(invalid("protocol.ttl", "must be at least 1".into()));
                }
                Ok(())
            }
            ProtocolSpec::Histogram { lo, hi, buckets, lambda } => {
                if hi <= lo || hi.is_nan() || lo.is_nan() {
                    return Err(invalid(
                        "protocol",
                        format!("histogram range [{lo}, {hi}) is empty"),
                    ));
                }
                if buckets == 0 {
                    return Err(invalid("protocol.buckets", "need at least one bucket".into()));
                }
                check_lambda(lambda)
            }
        }
    }

    fn validate_async(&self) -> Result<(), ScenarioError> {
        let invalid =
            |key: &str, reason: String| ScenarioError::Invalid { key: key.into(), reason };
        if self.engine != Engine::Async {
            if self.asynchrony.is_some() {
                return Err(ScenarioError::Unsupported {
                    reason: format!(
                        "[async] keys configure the asynchronous engine; engine = \"{}\" \
                         ignores them — set engine = \"async\" or drop the table",
                        match self.engine {
                            Engine::Push => "push",
                            Engine::Pairwise => "pairwise",
                            Engine::Async => unreachable!(),
                        }
                    ),
                });
            }
            return Ok(());
        }
        let a = self.asynchrony.unwrap_or_default();
        // The sequential async engine samples group truths through the
        // membership layer's group view; the *sharded* engine's samplers
        // are per-shard and cannot see cross-shard group structure.
        let may_shard = matches!(a.shards, Some(ShardsSpec::Auto) | Some(ShardsSpec::Count(2..)));
        if self.truth.needs_groups() && may_shard {
            return Err(ScenarioError::Unsupported {
                reason: format!(
                    "truth `{:?}` needs per-round group structure, which the sharded async \
                     engine's per-shard samplers do not read; use shards = 1 (or drop the key) \
                     or a global truth",
                    self.truth
                ),
            });
        }
        if a.interval_ms == 0 {
            return Err(invalid("async.interval_ms", "must be at least 1".into()));
        }
        if !(0.0..1.0).contains(&a.jitter) || a.jitter.is_nan() {
            return Err(invalid("async.jitter", format!("fraction {} outside [0, 1)", a.jitter)));
        }
        match a.latency {
            LatencySpec::Constant { .. } => {}
            LatencySpec::Uniform { lo_ms, hi_ms } => {
                if lo_ms > hi_ms {
                    return Err(invalid(
                        "async.latency",
                        format!("uniform range [{lo_ms}, {hi_ms}] is inverted"),
                    ));
                }
            }
            LatencySpec::Exponential { mean_ms } => {
                if !mean_ms.is_finite() || mean_ms < 0.0 {
                    return Err(invalid(
                        "async.latency",
                        format!("mean {mean_ms} must be finite and >= 0"),
                    ));
                }
            }
        }
        match a.drift {
            DriftSpec::Synced => {}
            DriftSpec::Skew { spread } => {
                if !(0.0..1.0).contains(&spread) || spread.is_nan() {
                    return Err(invalid(
                        "async.drift.spread",
                        format!("spread {spread} outside [0, 1) (rates must stay positive)"),
                    ));
                }
            }
            DriftSpec::Bernoulli { skip_prob } => {
                if !(0.0..=1.0).contains(&skip_prob) || skip_prob.is_nan() {
                    return Err(invalid(
                        "async.drift.skip_prob",
                        format!("probability {skip_prob} outside [0, 1]"),
                    ));
                }
            }
            DriftSpec::RandomWalk { step_prob } => {
                if !(0.0..=1.0).contains(&step_prob) || step_prob.is_nan() {
                    return Err(invalid(
                        "async.drift.step_prob",
                        format!("probability {step_prob} outside [0, 1]"),
                    ));
                }
            }
        }
        if a.sample_every_ms == Some(0) {
            return Err(invalid("async.sample_every_ms", "must be at least 1".into()));
        }
        match a.shards {
            None | Some(ShardsSpec::Auto) => {}
            Some(ShardsSpec::Count(0)) => {
                return Err(invalid(
                    "async.shards",
                    "need at least one shard (1 = sequential, \"auto\" = size from the machine)"
                        .into(),
                ));
            }
            Some(ShardsSpec::Count(s)) => {
                if let Some(n) = self.n {
                    if s as usize > n {
                        return Err(invalid(
                            "async.shards",
                            format!("{s} shards exceed the population of {n} hosts"),
                        ));
                    }
                }
                if s >= 2 && a.latency.min_lookahead_ms() == 0 {
                    return Err(invalid(
                        "async.shards",
                        format!(
                            "latency {:?} has no positive lower bound, so the sharded engine's \
                             conservative window protocol has zero lookahead; use a latency with \
                             a positive minimum, shards = 1, or shards = \"auto\" (which falls \
                             back to the sequential engine)",
                            a.latency
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Resolve the `[async] shards` request against a population of `n`
    /// hosts: the shard count to run with, plus a note when the request
    /// degraded to the sequential engine. `1` means sequential; `≥ 2`
    /// means the sharded engine. Assumes the spec already validated.
    pub fn effective_shards(&self, n: usize) -> (usize, Option<ShardFallback>) {
        if self.engine != Engine::Async {
            return (1, None);
        }
        let a = self.asynchrony.unwrap_or_default();
        match a.shards {
            None => (1, None),
            Some(ShardsSpec::Count(s)) => {
                let s = (s as usize).min(n.max(1));
                if s >= 2 && a.latency.min_lookahead_ms() == 0 {
                    // Unreachable after validate(); kept as a belt for
                    // programmatic specs that skip it.
                    (1, Some(ShardFallback::ZeroLookahead { latency: a.latency }))
                } else {
                    (s.max(1), None)
                }
            }
            Some(ShardsSpec::Auto) => {
                if a.latency.min_lookahead_ms() == 0 {
                    return (1, Some(ShardFallback::ZeroLookahead { latency: a.latency }));
                }
                // Clamp to ≥ 2 so the digest never depends on the machine:
                // every count ≥ 2 is the same bit-identical family, whereas
                // 1 would select the (statistically different) sequential
                // engine on single-core hosts only.
                let k = dynagg_sim::par::effective_threads().max(2).min(n.max(1));
                (k.max(1), None)
            }
        }
    }

    fn validate_partitions(&self) -> Result<(), ScenarioError> {
        if self.partitions.is_empty() {
            return Ok(());
        }
        if matches!(self.env, EnvSpec::Trace { .. }) {
            return Err(ScenarioError::Unsupported {
                reason: "partition islands resolve against a fixed synthetic population; trace \
                         environments derive theirs from the dataset — use kind = \"uniform\", \
                         \"spatial\", or \"clustered\""
                    .into(),
            });
        }
        if let Some(sweep) = &self.sweep {
            if sweep.axis == SweepAxis::N {
                return Err(ScenarioError::Unsupported {
                    reason: "a population sweep changes what the island definitions cover; fix \
                             `n` or drop the [[partition]] tables"
                        .into(),
                });
            }
        }
        if let FailureSpec::Churn { join_per_round, .. } = self.failure {
            if join_per_round > 0.0 {
                return Err(ScenarioError::Unsupported {
                    reason: "churn-joined hosts have no island assignment; use leave-only churn \
                             or at-round failures alongside [[partition]] tables"
                        .into(),
                });
            }
        }
        let n = self.n.expect("validated above: non-trace specs have n");
        let topo = topology_info(&self.env, n);
        let mut resolved = Vec::with_capacity(self.partitions.len());
        for (i, event) in self.partitions.iter().enumerate() {
            resolved.push(partition::resolve(event, n, &topo).map_err(|reason| {
                ScenarioError::Invalid { key: format!("partition[{i}]"), reason }
            })?);
        }
        PartitionTable::new(resolved)
            .map(|_| ())
            .map_err(|reason| ScenarioError::Invalid { key: "partition".into(), reason })
    }

    fn validate_adversary(&self) -> Result<(), ScenarioError> {
        let invalid =
            |key: &str, reason: String| ScenarioError::Invalid { key: key.into(), reason };
        let Some(adv) = self.adversary else { return Ok(()) };
        if self.engine == Engine::Pairwise {
            return Err(ScenarioError::Unsupported {
                reason: "the adversary wraps the message-passing protocol step, which atomic \
                         pairwise exchanges bypass; use engine = \"push\" or \"async\""
                    .into(),
            });
        }
        if !(adv.fraction > 0.0 && adv.fraction <= 1.0) {
            return Err(invalid(
                "adversary.fraction",
                format!("fraction {} outside (0, 1]", adv.fraction),
            ));
        }
        let mismatch = |attack: &str, needs: &str| ScenarioError::Unsupported {
            reason: format!(
                "attack `{attack}` {needs}; protocol `{}` does not qualify",
                self.protocol.name()
            ),
        };
        match adv.attack {
            Attack::MassInflation { factor } => {
                if !factor.is_finite() || factor < 0.0 {
                    return Err(invalid(
                        "adversary.factor",
                        format!("factor {factor} must be finite and >= 0"),
                    ));
                }
                if !matches!(
                    self.protocol,
                    ProtocolSpec::PushSum
                        | ProtocolSpec::PushSumRevert { .. }
                        | ProtocolSpec::AdaptiveRevert { .. }
                        | ProtocolSpec::FullTransfer { .. }
                        | ProtocolSpec::EpochPushSum { .. }
                ) {
                    return Err(mismatch("mass-inflation", "corrupts Push-Sum mass messages"));
                }
            }
            Attack::StaleEpochReplay => {
                if !matches!(self.protocol, ProtocolSpec::EpochPushSum { .. }) {
                    return Err(mismatch(
                        "stale-epoch-replay",
                        "forges epoch numbers and needs protocol `epoch-push-sum`",
                    ));
                }
            }
            Attack::SketchCorruption { cells } => {
                if cells == 0 {
                    return Err(invalid("adversary.cells", "must be at least 1".into()));
                }
                if !matches!(
                    self.protocol,
                    ProtocolSpec::CountSketch { .. } | ProtocolSpec::CountSketchReset { .. }
                ) {
                    return Err(mismatch(
                        "sketch-corruption",
                        "forges sketch bits and needs a count-sketch protocol",
                    ));
                }
            }
        }
        if self.output.probe.is_some() {
            return Err(ScenarioError::Unsupported {
                reason: "probes read the inner protocol state, which the adversarial wrapper \
                         hides; drop the probe or the [adversary] table"
                    .into(),
            });
        }
        if self.output.report == Report::CounterCdf {
            return Err(ScenarioError::Unsupported {
                reason: "report = \"counter-cdf\" reads raw age matrices, which the adversarial \
                         wrapper hides; drop the report or the [adversary] table"
                    .into(),
            });
        }
        Ok(())
    }

    fn validate_failure(&self) -> Result<(), ScenarioError> {
        let invalid =
            |key: &str, reason: String| ScenarioError::Invalid { key: key.into(), reason };
        match self.failure {
            FailureSpec::None => Ok(()),
            FailureSpec::AtRound { fraction, .. } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(invalid(
                        "failure.fraction",
                        format!("fraction {fraction} outside (0, 1]"),
                    ));
                }
                Ok(())
            }
            FailureSpec::Churn { leave_per_round, join_per_round, .. } => {
                for (key, p) in [
                    ("failure.leave_per_round", leave_per_round),
                    ("failure.join_per_round", join_per_round),
                ] {
                    if !(0.0..=1.0).contains(&p) || p.is_nan() {
                        return Err(invalid(key, format!("rate {p} outside [0, 1]")));
                    }
                }
                Ok(())
            }
        }
    }

    /// Expand the sweep into concrete single-run specs, labeled
    /// `axis=value`. A sweepless spec yields itself, unlabeled. The spec
    /// must already validate.
    pub fn instances(&self) -> Vec<(Option<String>, ScenarioSpec)> {
        let Some(sweep) = &self.sweep else {
            let mut single = self.clone();
            single.sweep = None;
            return vec![(None, single)];
        };
        sweep
            .values
            .iter()
            .map(|&v| {
                let mut inst = self.clone();
                inst.sweep = None;
                match sweep.axis {
                    SweepAxis::Lambda => {
                        *inst.protocol.lambda_mut().expect("validated: protocol has lambda") = v;
                    }
                    SweepAxis::N => inst.n = Some(v as usize),
                }
                let label = match sweep.axis {
                    SweepAxis::Lambda => format!("lambda={v}"),
                    SweepAxis::N => format!("n={}", v as usize),
                };
                (Some(label), inst)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpec {
        let mut s = ScenarioSpec::new(
            "t",
            1,
            EnvSpec::Uniform { broadcast_fanout: None },
            ProtocolSpec::PushSumRevert { lambda: 0.01 },
        );
        s.n = Some(100);
        s.rounds = Some(5);
        s
    }

    #[test]
    fn base_spec_validates() {
        base().validate().unwrap();
    }

    #[test]
    fn missing_n_and_rounds_rejected() {
        let mut s = base();
        s.n = None;
        assert_eq!(s.validate(), Err(ScenarioError::Missing { table: "", key: "n" }));
        let mut s = base();
        s.rounds = None;
        assert_eq!(s.validate(), Err(ScenarioError::Missing { table: "", key: "rounds" }));
    }

    #[test]
    fn trace_env_rejects_explicit_n() {
        let mut s = base();
        s.env = EnvSpec::Trace { dataset: Dataset::One };
        assert!(matches!(s.validate(), Err(ScenarioError::Unsupported { .. })));
        s.n = None;
        s.validate().unwrap(); // rounds defaults to the trace horizon
    }

    #[test]
    fn lambda_range_enforced() {
        let mut s = base();
        s.protocol = ProtocolSpec::PushSumRevert { lambda: 1.5 };
        assert!(matches!(s.validate(), Err(ScenarioError::Invalid { .. })));
    }

    #[test]
    fn pairwise_needs_support() {
        let mut s = base();
        s.engine = Engine::Pairwise;
        s.validate().unwrap();
        s.protocol = ProtocolSpec::TagTree { child_timeout: 3 };
        assert!(matches!(s.validate(), Err(ScenarioError::Unsupported { .. })));
    }

    #[test]
    fn group_truth_needs_trace() {
        let mut s = base();
        s.truth = Truth::GroupMean;
        assert!(matches!(s.validate(), Err(ScenarioError::Unsupported { .. })));
    }

    #[test]
    fn sweep_instances_apply_axis() {
        let mut s = base();
        s.sweep = Some(Sweep { axis: SweepAxis::Lambda, values: vec![0.0, 0.5] });
        s.validate().unwrap();
        let inst = s.instances();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst[0].0.as_deref(), Some("lambda=0"));
        assert_eq!(inst[1].1.protocol, ProtocolSpec::PushSumRevert { lambda: 0.5 });
        assert!(inst.iter().all(|(_, s)| s.sweep.is_none()));
    }

    #[test]
    fn lambda_sweep_needs_lambda_protocol() {
        let mut s = base();
        s.protocol = ProtocolSpec::PushSum;
        s.sweep = Some(Sweep { axis: SweepAxis::Lambda, values: vec![0.1] });
        assert!(matches!(s.validate(), Err(ScenarioError::Unsupported { .. })));
    }

    #[test]
    fn counter_cdf_constraints() {
        let mut s = base();
        s.output.report = Report::CounterCdf;
        assert!(matches!(s.validate(), Err(ScenarioError::Unsupported { .. })));
        s.protocol = ProtocolSpec::CountSketchReset {
            cutoff: Cutoff::paper_uniform(),
            push_pull: true,
            multiplier: 1,
            hash_seed_xor: 0,
        };
        s.validate().unwrap();
    }

    #[test]
    fn clustered_event_bounds_checked() {
        let mut s = base();
        s.env = EnvSpec::Clustered {
            clusters: 2,
            migration: 0.0,
            bridge: 0.0,
            events: vec![MobilityEvent {
                round: 0,
                kind: MobilityKind::Merge { from: 0, into: 5 },
            }],
        };
        assert!(matches!(s.validate(), Err(ScenarioError::Invalid { .. })));
    }
}
