//! Typed scenario errors.
//!
//! Every way a scenario file can be wrong maps to a variant here — parsing
//! and validation never panic. The rejection tests in
//! `tests/rejections.rs` pin the variant produced by each misuse.

use std::fmt;

/// Why a scenario failed to parse, validate, or resolve.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file is not valid TOML.
    Toml(toml::TomlError),
    /// A required key is absent.
    Missing {
        /// The table it belongs in (`""` for the top level).
        table: &'static str,
        /// The missing key.
        key: &'static str,
    },
    /// A key holds the wrong TOML type.
    Type {
        /// The offending key (dotted path).
        key: String,
        /// What the spec expects.
        expected: &'static str,
        /// What the file contains.
        found: &'static str,
    },
    /// A key that does not belong in its table — including keys of a
    /// *different* environment/protocol kind (conflicting env keys land
    /// here: `clusters` under `kind = "uniform"` is rejected, not
    /// silently ignored).
    UnknownKey {
        /// The table being parsed.
        table: &'static str,
        /// The unexpected key.
        key: String,
    },
    /// An unknown registry name (protocol, environment kind, truth,
    /// failure kind, metric, sweep axis, …).
    UnknownName {
        /// What kind of name was being resolved.
        what: &'static str,
        /// The name the file used.
        name: String,
    },
    /// A value is out of range or otherwise invalid.
    Invalid {
        /// The offending key (dotted path).
        key: String,
        /// Why it is rejected.
        reason: String,
    },
    /// A structurally valid spec that the engine cannot execute (engine ×
    /// protocol mismatch, group truth without a trace environment, …).
    Unsupported {
        /// What is unsupported, and what would be.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Toml(e) => write!(f, "{e}"),
            ScenarioError::Missing { table, key } => {
                if table.is_empty() {
                    write!(f, "missing required key `{key}`")
                } else {
                    write!(f, "missing required key `{key}` in [{table}]")
                }
            }
            ScenarioError::Type { key, expected, found } => {
                write!(f, "`{key}` must be a {expected}, found a {found}")
            }
            ScenarioError::UnknownKey { table, key } => {
                if table.is_empty() {
                    write!(f, "unknown key `{key}` at the top level")
                } else {
                    write!(f, "unknown key `{key}` in [{table}]")
                }
            }
            ScenarioError::UnknownName { what, name } => {
                write!(f, "unknown {what} `{name}`")
            }
            ScenarioError::Invalid { key, reason } => write!(f, "invalid `{key}`: {reason}"),
            ScenarioError::Unsupported { reason } => write!(f, "unsupported scenario: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Toml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<toml::TomlError> for ScenarioError {
    fn from(e: toml::TomlError) -> Self {
        ScenarioError::Toml(e)
    }
}
