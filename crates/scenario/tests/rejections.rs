//! Spec-validation rejection tests: every class of scenario-file misuse
//! must produce a *typed* [`ScenarioError`], never a panic, and the right
//! variant — these are the errors scenario authors will actually see.

use dynagg_scenario::{ScenarioError, ScenarioSpec};

const VALID: &str = r#"
name = "valid"
seed = 7
n = 200
rounds = 10

[env]
kind = "uniform"

[protocol]
name = "push-sum-revert"
lambda = 0.01
"#;

fn replace(base: &str, from: &str, to: &str) -> String {
    assert!(base.contains(from), "fixture drift: `{from}` not found");
    base.replace(from, to)
}

#[test]
fn the_fixture_itself_parses() {
    let spec = ScenarioSpec::from_toml_str(VALID).unwrap();
    assert_eq!(spec.name, "valid");
    assert_eq!(spec.seed, 7);
}

#[test]
fn unknown_protocol_name_is_typed() {
    let src = replace(VALID, "push-sum-revert", "push-pull-sum");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownName { what: "protocol", name }) => {
            assert_eq!(name, "push-pull-sum");
        }
        other => panic!("expected UnknownName {{ protocol }}, got {other:?}"),
    }
}

#[test]
fn missing_seed_is_typed() {
    let src = replace(VALID, "seed = 7\n", "");
    assert_eq!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Missing { table: "", key: "seed" })
    );
}

#[test]
fn conflicting_env_keys_are_typed() {
    // `clusters` belongs to the clustered environment; under uniform it is
    // a conflict, not dead configuration.
    let src = replace(VALID, "kind = \"uniform\"", "kind = \"uniform\"\nclusters = 4");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownKey { table: "env", key }) => assert_eq!(key, "clusters"),
        other => panic!("expected UnknownKey {{ env, clusters }}, got {other:?}"),
    }
}

#[test]
fn unknown_top_level_key_is_typed() {
    let src = replace(VALID, "n = 200", "n = 200\npopulation = 200");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownKey { table: "", key }) => assert_eq!(key, "population"),
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}

#[test]
fn wrong_type_is_typed() {
    let src = replace(VALID, "lambda = 0.01", "lambda = \"small\"");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Type { key, expected: "number", found: "string" }) => {
            assert_eq!(key, "protocol.lambda");
        }
        other => panic!("expected Type error, got {other:?}"),
    }
}

#[test]
fn out_of_range_lambda_is_typed() {
    let src = replace(VALID, "lambda = 0.01", "lambda = 1.5");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "protocol.lambda"
    ));
}

#[test]
fn negative_seed_is_typed() {
    let src = replace(VALID, "seed = 7", "seed = -7");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "seed"
    ));
}

#[test]
fn bad_toml_surfaces_parse_error_with_line() {
    let src = replace(VALID, "seed = 7", "seed = ");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Toml(e)) => assert!(e.line >= 2, "line {}", e.line),
        other => panic!("expected Toml error, got {other:?}"),
    }
}

#[test]
fn pairwise_engine_with_sketch_protocol_is_unsupported() {
    let src = replace(VALID, "rounds = 10", "rounds = 10\nengine = \"pairwise\"");
    let src = replace(
        &src,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"count-sketch-reset\"",
    );
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn group_truth_without_trace_env_is_unsupported() {
    let src = replace(VALID, "n = 200", "n = 200\ntruth = \"group-mean\"");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn unknown_truth_and_metric_names_are_typed() {
    let src = replace(VALID, "n = 200", "n = 200\ntruth = \"median\"");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownName { what: "truth", .. })
    ));
    let src = format!("{VALID}\n[output]\nmetrics = [\"stdev\"]\n");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownName { what: "metric", .. })
    ));
}

#[test]
fn lambda_sweep_on_lambdaless_protocol_is_unsupported() {
    let src = replace(
        VALID,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"push-sum\"\n\n[sweep]\naxis = \"lambda\"\nvalues = [0.0, 0.1]",
    );
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn clustered_event_naming_missing_clique_is_typed() {
    let src = replace(
        VALID,
        "kind = \"uniform\"",
        "kind = \"clustered\"\nclusters = 2\n\n[[env.events]]\nround = 3\nkind = \"merge\"\nfrom = 0\ninto = 9",
    );
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "env.events"
    ));
}

#[test]
fn clique_drift_must_match_the_clustered_env() {
    let clustered = replace(VALID, "kind = \"uniform\"", "kind = \"clustered\"\nclusters = 6");
    let epoch = |src: &str| {
        replace(
            src,
            "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
            "[protocol]\nname = \"epoch-push-sum\"\nepoch_len = 20\nclique_drift = { clusters = 8, magnitude = 1.0 }",
        )
    };
    // Mismatched cluster counts: the drift topology would silently diverge
    // from the actual cliques.
    assert!(matches!(
        ScenarioSpec::from_toml_str(&epoch(&clustered)),
        Err(ScenarioError::Invalid { key, .. }) if key == "protocol.clique_drift.clusters"
    ));
    // Matching counts validate.
    let matching = epoch(&clustered).replace("clusters = 8,", "clusters = 6,");
    ScenarioSpec::from_toml_str(&matching).unwrap();
    // clique_drift without a clustered environment is meaningless.
    assert!(matches!(
        ScenarioSpec::from_toml_str(&epoch(VALID)),
        Err(ScenarioError::Unsupported { .. })
    ));
}

#[test]
fn trace_env_with_explicit_n_is_unsupported() {
    let src = replace(VALID, "kind = \"uniform\"", "kind = \"trace\"\ndataset = 1");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn counter_cdf_on_non_sketch_protocol_is_unsupported() {
    let src = format!("{VALID}\n[output]\nreport = \"counter-cdf\"\n");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn errors_render_readable_messages() {
    let src = replace(VALID, "push-sum-revert", "nope");
    let msg = ScenarioSpec::from_toml_str(&src).unwrap_err().to_string();
    assert!(msg.contains("unknown protocol `nope`"), "{msg}");
    let src = replace(VALID, "seed = 7\n", "");
    let msg = ScenarioSpec::from_toml_str(&src).unwrap_err().to_string();
    assert!(msg.contains("missing required key `seed`"), "{msg}");
}
