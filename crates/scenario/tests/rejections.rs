//! Spec-validation rejection tests: every class of scenario-file misuse
//! must produce a *typed* [`ScenarioError`], never a panic, and the right
//! variant — these are the errors scenario authors will actually see.

use dynagg_scenario::{ScenarioError, ScenarioSpec};

const VALID: &str = r#"
name = "valid"
seed = 7
n = 200
rounds = 10

[env]
kind = "uniform"

[protocol]
name = "push-sum-revert"
lambda = 0.01
"#;

fn replace(base: &str, from: &str, to: &str) -> String {
    assert!(base.contains(from), "fixture drift: `{from}` not found");
    base.replace(from, to)
}

#[test]
fn the_fixture_itself_parses() {
    let spec = ScenarioSpec::from_toml_str(VALID).unwrap();
    assert_eq!(spec.name, "valid");
    assert_eq!(spec.seed, 7);
}

#[test]
fn unknown_protocol_name_is_typed() {
    let src = replace(VALID, "push-sum-revert", "push-pull-sum");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownName { what: "protocol", name }) => {
            assert_eq!(name, "push-pull-sum");
        }
        other => panic!("expected UnknownName {{ protocol }}, got {other:?}"),
    }
}

#[test]
fn missing_seed_is_typed() {
    let src = replace(VALID, "seed = 7\n", "");
    assert_eq!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Missing { table: "", key: "seed" })
    );
}

#[test]
fn conflicting_env_keys_are_typed() {
    // `clusters` belongs to the clustered environment; under uniform it is
    // a conflict, not dead configuration.
    let src = replace(VALID, "kind = \"uniform\"", "kind = \"uniform\"\nclusters = 4");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownKey { table: "env", key }) => assert_eq!(key, "clusters"),
        other => panic!("expected UnknownKey {{ env, clusters }}, got {other:?}"),
    }
}

#[test]
fn unknown_top_level_key_is_typed() {
    let src = replace(VALID, "n = 200", "n = 200\npopulation = 200");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownKey { table: "", key }) => assert_eq!(key, "population"),
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}

#[test]
fn wrong_type_is_typed() {
    let src = replace(VALID, "lambda = 0.01", "lambda = \"small\"");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Type { key, expected: "number", found: "string" }) => {
            assert_eq!(key, "protocol.lambda");
        }
        other => panic!("expected Type error, got {other:?}"),
    }
}

#[test]
fn out_of_range_lambda_is_typed() {
    let src = replace(VALID, "lambda = 0.01", "lambda = 1.5");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "protocol.lambda"
    ));
}

#[test]
fn negative_seed_is_typed() {
    let src = replace(VALID, "seed = 7", "seed = -7");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "seed"
    ));
}

#[test]
fn bad_toml_surfaces_parse_error_with_line() {
    let src = replace(VALID, "seed = 7", "seed = ");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Toml(e)) => assert!(e.line >= 2, "line {}", e.line),
        other => panic!("expected Toml error, got {other:?}"),
    }
}

#[test]
fn pairwise_engine_with_sketch_protocol_is_unsupported() {
    let src = replace(VALID, "rounds = 10", "rounds = 10\nengine = \"pairwise\"");
    let src = replace(
        &src,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"count-sketch-reset\"",
    );
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn group_truth_without_trace_env_is_unsupported() {
    let src = replace(VALID, "n = 200", "n = 200\ntruth = \"group-mean\"");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn unknown_truth_and_metric_names_are_typed() {
    let src = replace(VALID, "n = 200", "n = 200\ntruth = \"median\"");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownName { what: "truth", .. })
    ));
    let src = format!("{VALID}\n[output]\nmetrics = [\"stdev\"]\n");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownName { what: "metric", .. })
    ));
}

#[test]
fn lambda_sweep_on_lambdaless_protocol_is_unsupported() {
    let src = replace(
        VALID,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"push-sum\"\n\n[sweep]\naxis = \"lambda\"\nvalues = [0.0, 0.1]",
    );
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn clustered_event_naming_missing_clique_is_typed() {
    let src = replace(
        VALID,
        "kind = \"uniform\"",
        "kind = \"clustered\"\nclusters = 2\n\n[[env.events]]\nround = 3\nkind = \"merge\"\nfrom = 0\ninto = 9",
    );
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "env.events"
    ));
}

#[test]
fn clique_drift_must_match_the_clustered_env() {
    let clustered = replace(VALID, "kind = \"uniform\"", "kind = \"clustered\"\nclusters = 6");
    let epoch = |src: &str| {
        replace(
            src,
            "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
            "[protocol]\nname = \"epoch-push-sum\"\nepoch_len = 20\nclique_drift = { clusters = 8, magnitude = 1.0 }",
        )
    };
    // Mismatched cluster counts: the drift topology would silently diverge
    // from the actual cliques.
    assert!(matches!(
        ScenarioSpec::from_toml_str(&epoch(&clustered)),
        Err(ScenarioError::Invalid { key, .. }) if key == "protocol.clique_drift.clusters"
    ));
    // Matching counts validate.
    let matching = epoch(&clustered).replace("clusters = 8,", "clusters = 6,");
    ScenarioSpec::from_toml_str(&matching).unwrap();
    // clique_drift without a clustered environment is meaningless.
    assert!(matches!(
        ScenarioSpec::from_toml_str(&epoch(VALID)),
        Err(ScenarioError::Unsupported { .. })
    ));
}

#[test]
fn trace_env_with_explicit_n_is_unsupported() {
    let src = replace(VALID, "kind = \"uniform\"", "kind = \"trace\"\ndataset = 1");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn counter_cdf_on_non_sketch_protocol_is_unsupported() {
    let src = format!("{VALID}\n[output]\nreport = \"counter-cdf\"\n");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn errors_render_readable_messages() {
    let src = replace(VALID, "push-sum-revert", "nope");
    let msg = ScenarioSpec::from_toml_str(&src).unwrap_err().to_string();
    assert!(msg.contains("unknown protocol `nope`"), "{msg}");
    let src = replace(VALID, "seed = 7\n", "");
    let msg = ScenarioSpec::from_toml_str(&src).unwrap_err().to_string();
    assert!(msg.contains("missing required key `seed`"), "{msg}");
}

// ── async engine ────────────────────────────────────────────────────────

/// A valid async scenario exercising every `[async]` key.
const VALID_ASYNC: &str = r#"
name = "valid-async"
seed = 7
n = 200
rounds = 10
engine = "async"

[async]
interval_ms = 100
jitter = 0.05
sample_every_ms = 50

[async.latency]
kind = "uniform"
lo_ms = 5
hi_ms = 30

[async.drift]
kind = "skew"
spread = 0.2

[env]
kind = "uniform"

[protocol]
name = "push-sum-revert"
lambda = 0.01
"#;

#[test]
fn the_async_fixture_parses_and_validates() {
    let spec = ScenarioSpec::from_toml_str(VALID_ASYNC).unwrap();
    assert_eq!(spec.engine, dynagg_scenario::Engine::Async);
    let a = spec.asynchrony.expect("[async] table parsed");
    assert_eq!(a.interval_ms, 100);
    assert_eq!(a.sample_every_ms, Some(50));
    assert_eq!(a.latency, dynagg_scenario::LatencySpec::Uniform { lo_ms: 5, hi_ms: 30 });
    assert_eq!(a.drift, dynagg_scenario::DriftSpec::Skew { spread: 0.2 });
}

#[test]
fn async_engine_without_async_table_uses_defaults() {
    let src = replace(VALID, "rounds = 10", "rounds = 10\nengine = \"async\"");
    let spec = ScenarioSpec::from_toml_str(&src).unwrap();
    assert_eq!(spec.engine, dynagg_scenario::Engine::Async);
    assert!(spec.asynchrony.is_none(), "defaults apply at run time");
}

#[test]
fn async_keys_under_lockstep_engines_are_unsupported() {
    // [async] with the (default) push engine.
    let src = format!("{VALID}\n[async]\ninterval_ms = 50\n");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("engine = \"push\""), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    // [async] with the pairwise engine.
    let src = replace(VALID, "rounds = 10", "rounds = 10\nengine = \"pairwise\"");
    let src = format!("{src}\n[async]\ninterval_ms = 50\n");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn async_engine_runs_every_environment() {
    // The membership layer lets the async engine drive every topology;
    // these used to be typed rejections and must now validate — and run.
    let clustered = replace(
        VALID_ASYNC,
        "[env]\nkind = \"uniform\"",
        "[env]\nkind = \"clustered\"\nclusters = 4\nmigration = 0.01",
    );
    let mut spec = ScenarioSpec::from_toml_str(&clustered).unwrap();
    spec.n = Some(80);
    spec.rounds = Some(3);
    let series = dynagg_scenario::run_series(&spec).unwrap();
    // The fixture samples every 50 ms: two rows per 100 ms nominal round.
    assert_eq!(series.rounds.len(), 6);
    assert_eq!(series.last().unwrap().alive, 80);

    let spatial = replace(VALID_ASYNC, "[env]\nkind = \"uniform\"", "[env]\nkind = \"spatial\"");
    let mut spec = ScenarioSpec::from_toml_str(&spatial).unwrap();
    spec.n = Some(49);
    spec.rounds = Some(3);
    let series = dynagg_scenario::run_series(&spec).unwrap();
    assert_eq!(series.last().unwrap().alive, 49);

    let trace =
        replace(VALID_ASYNC, "[env]\nkind = \"uniform\"", "[env]\nkind = \"trace\"\ndataset = 1");
    let trace = replace(&trace, "n = 200\n", ""); // trace envs derive n
    let mut spec = ScenarioSpec::from_toml_str(&trace).unwrap();
    spec.rounds = Some(3);
    let series = dynagg_scenario::run_series(&spec).unwrap();
    assert_eq!(series.last().unwrap().alive, 9, "dataset 1 has 9 devices");
}

#[test]
fn group_truth_under_sharded_async_engine_is_unsupported() {
    // The sequential async engine samples group truths through the
    // membership layer's group view, so a trace + group-mean async spec
    // validates; the *sharded* engine's per-shard samplers cannot see
    // cross-shard group structure — a typed rejection, not a panic.
    let src =
        replace(VALID_ASYNC, "[env]\nkind = \"uniform\"", "[env]\nkind = \"trace\"\ndataset = 1");
    let src = replace(&src, "n = 200\n", "");
    let src = replace(&src, "rounds = 10", "rounds = 10\ntruth = \"group-mean\"");
    ScenarioSpec::from_toml_str(&src).expect("sequential async samples group truths");

    let sharded = replace(&src, "interval_ms = 100", "interval_ms = 100\nshards = 2");
    match ScenarioSpec::from_toml_str(&sharded) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("per-shard samplers"), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    let auto = replace(&src, "interval_ms = 100", "interval_ms = 100\nshards = \"auto\"");
    match ScenarioSpec::from_toml_str(&auto) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("per-shard samplers"), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn unknown_async_keys_and_kinds_are_typed() {
    let src = replace(VALID_ASYNC, "interval_ms = 100", "interval = 100");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownKey { table: "async", .. })
    ));
    let src =
        replace(VALID_ASYNC, "kind = \"uniform\"\nlo_ms = 5\nhi_ms = 30", "kind = \"gaussian\"");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownName { what: "latency kind", .. })
    ));
    let src = replace(VALID_ASYNC, "kind = \"skew\"\nspread = 0.2", "kind = \"wobble\"");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownName { what: "drift kind", .. })
    ));
}

#[test]
fn async_range_violations_are_typed() {
    let src = replace(VALID_ASYNC, "jitter = 0.05", "jitter = 1.5");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "async.jitter"
    ));
    let src = replace(VALID_ASYNC, "lo_ms = 5\nhi_ms = 30", "lo_ms = 30\nhi_ms = 5");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "async.latency"
    ));
    let src = replace(VALID_ASYNC, "spread = 0.2", "spread = 1.0");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "async.drift.spread"
    ));
    let src = replace(VALID_ASYNC, "sample_every_ms = 50", "sample_every_ms = 0");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "async.sample_every_ms"
    ));
}

#[test]
fn counter_cdf_under_async_requires_the_sequential_engine() {
    let base = replace(
        VALID_ASYNC,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"count-sketch-reset\"\n\n[output]\nreport = \"counter-cdf\"",
    );
    // No shards key (and shards = 1): the sequential engine owns every
    // node, so the post-run counter readout is supported.
    ScenarioSpec::from_toml_str(&base).unwrap();
    let one = replace(&base, "interval_ms = 100", "interval_ms = 100\nshards = 1");
    ScenarioSpec::from_toml_str(&one).unwrap();
    // Sharded engines move nodes into worker threads: typed rejection.
    for shards in ["shards = 2", "shards = \"auto\""] {
        let src = replace(&base, "interval_ms = 100", &format!("interval_ms = 100\n{shards}"));
        assert!(
            matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })),
            "`{shards}` must reject counter-cdf"
        );
    }
}

// ── wire accounting ─────────────────────────────────────────────────────

#[test]
fn measured_wire_parses_on_the_push_engine() {
    let src = replace(VALID, "rounds = 10", "rounds = 10\nwire = \"measured\"");
    let spec = ScenarioSpec::from_toml_str(&src).unwrap();
    assert_eq!(spec.wire, dynagg_scenario::WireAccounting::Measured);
    // `priced` and an absent key are the same default.
    let src = replace(VALID, "rounds = 10", "rounds = 10\nwire = \"priced\"");
    assert_eq!(
        ScenarioSpec::from_toml_str(&src).unwrap().wire,
        ScenarioSpec::from_toml_str(VALID).unwrap().wire,
    );
}

#[test]
fn unknown_wire_name_is_typed() {
    let src = replace(VALID, "rounds = 10", "rounds = 10\nwire = \"metered\"");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownName { what: "wire", name }) => assert_eq!(name, "metered"),
        other => panic!("expected UnknownName {{ wire }}, got {other:?}"),
    }
}

#[test]
fn measured_wire_under_async_is_unsupported() {
    let src = replace(VALID_ASYNC, "engine = \"async\"", "engine = \"async\"\nwire = \"measured\"");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn measured_wire_under_pairwise_is_unsupported() {
    let src =
        replace(VALID, "rounds = 10", "rounds = 10\nengine = \"pairwise\"\nwire = \"measured\"");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

// ── probes ──────────────────────────────────────────────────────────────

#[test]
fn mass_weight_probe_parses_on_mass_protocols() {
    let src = format!("{VALID}\n[output]\nprobe = \"mass-weight\"\n");
    let spec = ScenarioSpec::from_toml_str(&src).unwrap();
    assert_eq!(spec.output.probe, Some(dynagg_scenario::Probe::MassWeight));
}

#[test]
fn mass_weight_probe_on_massless_protocol_is_unsupported() {
    let src = replace(
        VALID,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"count-sketch-reset\"",
    );
    let src = format!("{src}\n[output]\nprobe = \"mass-weight\"\n");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("mass"), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn mass_weight_probe_under_async_engine_is_unsupported() {
    let src = format!("{VALID_ASYNC}\n[output]\nprobe = \"mass-weight\"\n");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn unknown_probe_name_is_typed() {
    let src = format!("{VALID}\n[output]\nprobe = \"total-mass\"\n");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownName { what: "probe", .. })
    ));
}

// ── chaos: partitions ───────────────────────────────────────────────────

/// A valid two-island split/heal over the uniform environment.
const VALID_PARTITION: &str = r#"
name = "valid-partition"
seed = 7
n = 200
rounds = 10

[env]
kind = "uniform"

[protocol]
name = "push-sum-revert"
lambda = 0.01

[[partition]]
at_round = 2
heal_at = 6
islands = ["nodes:0..100", "nodes:100..200"]
"#;

#[test]
fn the_partition_fixture_parses() {
    let spec = ScenarioSpec::from_toml_str(VALID_PARTITION).unwrap();
    assert_eq!(spec.partitions.len(), 1);
    assert_eq!(spec.partitions[0].at_round, 2);
    assert_eq!(spec.partitions[0].heal_at, Some(6));
    assert_eq!(spec.partitions[0].islands.len(), 2);
}

#[test]
fn unknown_island_kind_is_typed() {
    let src = replace(VALID_PARTITION, "nodes:0..100", "rows:0..100");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownName { what: "island kind", name }) => assert_eq!(name, "rows"),
        other => panic!("expected UnknownName {{ island kind }}, got {other:?}"),
    }
}

#[test]
fn malformed_island_syntax_is_typed() {
    // Not a range.
    let src = replace(VALID_PARTITION, "nodes:0..100", "nodes:0-100");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Invalid { key, reason }) => {
            assert_eq!(key, "partition.islands");
            assert!(reason.contains("half-open range"), "{reason}");
        }
        other => panic!("expected Invalid {{ partition.islands }}, got {other:?}"),
    }
    // Not an integer.
    let src = replace(VALID_PARTITION, "nodes:0..100", "nodes:zero..100");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "partition.islands"
    ));
    // Region needs four coordinates.
    let src = replace(VALID_PARTITION, "nodes:0..100", "region:0,0,5");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "partition.islands"
    ));
    // No kind prefix at all.
    let src = replace(VALID_PARTITION, "nodes:0..100", "0..100");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "partition.islands"
    ));
}

#[test]
fn overlapping_and_incomplete_islands_are_typed() {
    let overlap = replace(VALID_PARTITION, "nodes:100..200", "nodes:50..200");
    match ScenarioSpec::from_toml_str(&overlap) {
        Err(ScenarioError::Invalid { key, reason }) => {
            assert_eq!(key, "partition[0]");
            assert!(reason.contains("overlap"), "{reason}");
        }
        other => panic!("expected Invalid {{ partition[0] }}, got {other:?}"),
    }
    let hole = replace(VALID_PARTITION, "nodes:100..200", "nodes:150..200");
    match ScenarioSpec::from_toml_str(&hole) {
        Err(ScenarioError::Invalid { key, reason }) => {
            assert_eq!(key, "partition[0]");
            assert!(reason.contains("no island"), "{reason}");
        }
        other => panic!("expected Invalid {{ partition[0] }}, got {other:?}"),
    }
}

#[test]
fn heal_before_split_is_typed() {
    let src = replace(VALID_PARTITION, "heal_at = 6", "heal_at = 2");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "partition[0]"
    ));
}

#[test]
fn island_kinds_must_match_the_environment() {
    // Clique islands against the uniform environment.
    let src = replace(
        VALID_PARTITION,
        "\"nodes:0..100\", \"nodes:100..200\"",
        "\"cliques:0\", \"cliques:1\"",
    );
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Invalid { key, reason }) => {
            assert_eq!(key, "partition[0]");
            assert!(reason.contains("clustered"), "{reason}");
        }
        other => panic!("expected Invalid {{ partition[0] }}, got {other:?}"),
    }
    // Region islands likewise need the spatial grid.
    let src = replace(
        VALID_PARTITION,
        "\"nodes:0..100\", \"nodes:100..200\"",
        "\"region:0,0,7,14\", \"region:8,0,14,14\"",
    );
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, reason }) if key == "partition[0]" && reason.contains("spatial")
    ));
}

#[test]
fn partition_on_trace_env_is_unsupported() {
    let src = replace(VALID_PARTITION, "kind = \"uniform\"", "kind = \"trace\"\ndataset = 1");
    let src = replace(&src, "n = 200\n", "");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => assert!(reason.contains("trace"), "{reason}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn partition_with_population_sweep_is_unsupported() {
    let src = format!("{VALID_PARTITION}\n[sweep]\naxis = \"n\"\nvalues = [100.0, 200.0]\n");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("population sweep"), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn partition_with_churn_joins_is_unsupported() {
    let src = format!(
        "{VALID_PARTITION}\n[failure]\nkind = \"churn\"\nleave_per_round = 0.01\njoin_per_round = 0.01\n"
    );
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("island assignment"), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    // Leave-only churn composes fine.
    let src = format!(
        "{VALID_PARTITION}\n[failure]\nkind = \"churn\"\nleave_per_round = 0.01\njoin_per_round = 0.0\n"
    );
    ScenarioSpec::from_toml_str(&src).unwrap();
}

#[test]
fn overlapping_partition_schedules_are_typed() {
    let second = "\n[[partition]]\nat_round = 4\nheal_at = 9\nislands = [\"nodes:0..50\", \"nodes:50..200\"]\n";
    let src = format!("{VALID_PARTITION}{second}");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Invalid { key, reason }) => {
            assert_eq!(key, "partition");
            assert!(reason.contains("overlap"), "{reason}");
        }
        other => panic!("expected Invalid {{ partition }}, got {other:?}"),
    }
}

#[test]
fn unknown_partition_keys_and_missing_islands_are_typed() {
    let src = replace(VALID_PARTITION, "at_round = 2", "at_round = 2\nsplit_at = 2");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownKey { table: "partition", key }) if key == "split_at"
    ));
    let src = replace(VALID_PARTITION, "islands = [\"nodes:0..100\", \"nodes:100..200\"]\n", "");
    assert_eq!(
        ScenarioSpec::from_toml_str(&src).unwrap_err(),
        ScenarioError::Missing { table: "partition", key: "islands" }
    );
}

// ── chaos: adversaries ──────────────────────────────────────────────────

/// A valid mass-inflation adversary over Push-Sum-Revert.
const VALID_ADVERSARY: &str = r#"
name = "valid-adversary"
seed = 7
n = 200
rounds = 10

[env]
kind = "uniform"

[protocol]
name = "push-sum-revert"
lambda = 0.01

[adversary]
attack = "mass-inflation"
fraction = 0.02
factor = 2.0
from_round = 3
"#;

#[test]
fn the_adversary_fixture_parses() {
    let spec = ScenarioSpec::from_toml_str(VALID_ADVERSARY).unwrap();
    let adv = spec.adversary.expect("[adversary] parsed");
    assert_eq!(adv.fraction, 0.02);
    assert_eq!(adv.from_round, 3);
}

#[test]
fn unknown_attack_name_is_typed() {
    let src = replace(VALID_ADVERSARY, "mass-inflation", "bit-rot");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::UnknownName { what: "attack", name }) => assert_eq!(name, "bit-rot"),
        other => panic!("expected UnknownName {{ attack }}, got {other:?}"),
    }
}

#[test]
fn adversary_under_pairwise_engine_is_unsupported() {
    let src = replace(VALID_ADVERSARY, "rounds = 10", "rounds = 10\nengine = \"pairwise\"");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("pairwise"), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn adversary_fraction_out_of_range_is_typed() {
    for bad in ["fraction = 0.0", "fraction = 1.5", "fraction = -0.1"] {
        let src = replace(VALID_ADVERSARY, "fraction = 0.02", bad);
        assert!(
            matches!(
                ScenarioSpec::from_toml_str(&src),
                Err(ScenarioError::Invalid { ref key, .. }) if key == "adversary.fraction"
            ),
            "`{bad}` must be rejected"
        );
    }
}

#[test]
fn negative_inflation_factor_is_typed() {
    let src = replace(VALID_ADVERSARY, "factor = 2.0", "factor = -1.0");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "adversary.factor"
    ));
}

#[test]
fn attack_protocol_mismatches_are_unsupported() {
    // Mass inflation has nothing to corrupt in a sketch protocol.
    let src = replace(
        VALID_ADVERSARY,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"count-sketch\"",
    );
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("mass-inflation"), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    // Stale-epoch replay needs epoch annotations on the wire.
    let src = replace(
        VALID_ADVERSARY,
        "attack = \"mass-inflation\"\nfraction = 0.02\nfactor = 2.0",
        "attack = \"stale-epoch-replay\"\nfraction = 0.02",
    );
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
    // Sketch corruption needs sketch payloads.
    let src = replace(
        VALID_ADVERSARY,
        "attack = \"mass-inflation\"\nfraction = 0.02\nfactor = 2.0",
        "attack = \"sketch-corruption\"\nfraction = 0.02\ncells = 4",
    );
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn attack_keys_are_attack_specific() {
    // `cells` belongs to sketch-corruption, not mass-inflation.
    let src = replace(VALID_ADVERSARY, "factor = 2.0", "factor = 2.0\ncells = 4");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownKey { table: "adversary", key }) if key == "cells"
    ));
    // `factor` is meaningless for stale-epoch-replay.
    let src = replace(
        VALID_ADVERSARY,
        "push-sum-revert\"\nlambda = 0.01",
        "epoch-push-sum\"\nepoch_len = 20",
    );
    let src = replace(&src, "attack = \"mass-inflation\"", "attack = \"stale-epoch-replay\"");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::UnknownKey { table: "adversary", key }) if key == "factor"
    ));
    // Zero forged cells is no attack at all.
    let sketch = replace(
        VALID_ADVERSARY,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"count-sketch-reset\"",
    );
    let sketch = replace(
        &sketch,
        "attack = \"mass-inflation\"\nfraction = 0.02\nfactor = 2.0",
        "attack = \"sketch-corruption\"\nfraction = 0.02\ncells = 0",
    );
    assert!(matches!(
        ScenarioSpec::from_toml_str(&sketch),
        Err(ScenarioError::Invalid { key, .. }) if key == "adversary.cells"
    ));
}

#[test]
fn adversary_with_probe_or_counter_cdf_is_unsupported() {
    let src = format!("{VALID_ADVERSARY}\n[output]\nprobe = \"mass-weight\"\n");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
    let src = replace(
        VALID_ADVERSARY,
        "[protocol]\nname = \"push-sum-revert\"\nlambda = 0.01",
        "[protocol]\nname = \"count-sketch-reset\"",
    );
    let src = replace(
        &src,
        "attack = \"mass-inflation\"\nfraction = 0.02\nfactor = 2.0",
        "attack = \"sketch-corruption\"\nfraction = 0.02\ncells = 4",
    );
    let src = format!("{src}\n[output]\nreport = \"counter-cdf\"\n");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn shards_key_parses_counts_and_auto() {
    let src = replace(VALID_ASYNC, "interval_ms = 100", "interval_ms = 100\nshards = 4");
    let spec = ScenarioSpec::from_toml_str(&src).unwrap();
    let a = spec.asynchrony.unwrap();
    assert_eq!(a.shards, Some(dynagg_scenario::ShardsSpec::Count(4)));
    assert_eq!(spec.effective_shards(200), (4, None));

    let src = replace(VALID_ASYNC, "interval_ms = 100", "interval_ms = 100\nshards = \"auto\"");
    let spec = ScenarioSpec::from_toml_str(&src).unwrap();
    assert_eq!(spec.asynchrony.unwrap().shards, Some(dynagg_scenario::ShardsSpec::Auto));
    let (k, note) = spec.effective_shards(200);
    assert!(note.is_none());
    assert!((2..=200).contains(&k), "auto clamps to [2, n], got {k}");

    // shards = 1 is the sequential engine, explicitly.
    let src = replace(VALID_ASYNC, "interval_ms = 100", "interval_ms = 100\nshards = 1");
    let spec = ScenarioSpec::from_toml_str(&src).unwrap();
    assert_eq!(spec.effective_shards(200), (1, None));
}

#[test]
fn shards_under_lockstep_engines_are_unsupported() {
    // `shards` lives in [async]; any [async] table under a lockstep
    // engine is already a typed rejection.
    let src = format!("{VALID}\n[async]\nshards = 4\n");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Unsupported { reason }) => {
            assert!(reason.contains("engine = \"push\""), "{reason}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    let src = replace(VALID, "rounds = 10", "rounds = 10\nengine = \"pairwise\"");
    let src = format!("{src}\n[async]\nshards = 4\n");
    assert!(matches!(ScenarioSpec::from_toml_str(&src), Err(ScenarioError::Unsupported { .. })));
}

#[test]
fn shard_count_range_violations_are_typed() {
    // Zero shards is meaningless.
    let src = replace(VALID_ASYNC, "interval_ms = 100", "interval_ms = 100\nshards = 0");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "async.shards"
    ));
    // More shards than hosts is a spec bug, not a clamp.
    let src = replace(VALID_ASYNC, "interval_ms = 100", "interval_ms = 100\nshards = 300");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "async.shards"
    ));
    // Neither an integer nor "auto".
    let src = replace(VALID_ASYNC, "interval_ms = 100", "interval_ms = 100\nshards = \"all\"");
    assert!(matches!(
        ScenarioSpec::from_toml_str(&src),
        Err(ScenarioError::Invalid { key, .. }) if key == "async.shards"
    ));
}

#[test]
fn explicit_shards_with_zero_lookahead_are_typed() {
    // Exponential latency has no positive lower bound: the conservative
    // window protocol has zero lookahead, so an explicit parallel request
    // cannot be honored — a typed rejection, not a silent fallback.
    let src = replace(
        VALID_ASYNC,
        "kind = \"uniform\"\nlo_ms = 5\nhi_ms = 30",
        "kind = \"exponential\"\nmean_ms = 15.0",
    );
    let src = replace(&src, "interval_ms = 100", "interval_ms = 100\nshards = 4");
    match ScenarioSpec::from_toml_str(&src) {
        Err(ScenarioError::Invalid { key, reason }) => {
            assert_eq!(key, "async.shards");
            assert!(reason.contains("lookahead"), "{reason}");
        }
        other => panic!("expected Invalid {{ async.shards }}, got {other:?}"),
    }
}

#[test]
fn auto_shards_with_zero_lookahead_fall_back_with_a_typed_note() {
    // `shards = "auto"` degrades gracefully: the spec validates, and the
    // resolver reports the sequential fallback as a typed note.
    let src = replace(
        VALID_ASYNC,
        "kind = \"uniform\"\nlo_ms = 5\nhi_ms = 30",
        "kind = \"exponential\"\nmean_ms = 15.0",
    );
    let src = replace(&src, "interval_ms = 100", "interval_ms = 100\nshards = \"auto\"");
    let spec = ScenarioSpec::from_toml_str(&src).unwrap();
    let (k, note) = spec.effective_shards(200);
    assert_eq!(k, 1, "zero lookahead forces the sequential engine");
    match note {
        Some(dynagg_scenario::ShardFallback::ZeroLookahead { latency }) => {
            assert_eq!(latency, dynagg_scenario::LatencySpec::Exponential { mean_ms: 15.0 });
        }
        other => panic!("expected a ZeroLookahead note, got {other:?}"),
    }
    let rendered = note.unwrap().to_string();
    assert!(rendered.contains("zero lookahead"), "{rendered}");
}
