//! # dynagg — dynamic in-network aggregation
//!
//! Facade crate re-exporting the full workspace. A reproduction of
//! *"Dynamic Approaches to In-Network Aggregation"* (Kennedy, Koch, Demers;
//! ICDE 2009): gossip protocols that maintain running estimates of
//! **average**, **count**, and **sum** aggregates over networks whose
//! membership churns silently.
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`protocols`] | `dynagg-core` | Push-Sum(-Revert), Full-Transfer, Count-Sketch(-Reset), Invert-Average, epoch/tree baselines |
//! | [`sketch`] | `dynagg-sketch` | FM sketches, PCSA, age-counter matrices, cutoffs |
//! | [`sim`] | `dynagg-sim` | round-based gossip simulator, environments, failure injection, metrics |
//! | [`trace`] | `dynagg-trace` | contact traces: parser, synthetic Haggle-like generator, group computation |
//! | [`node`] | `dynagg-node` | async node runtime: wire frames, drifting timers, discrete-event engine (`engine = "async"`) |
//! | [`scenario`] | `dynagg-scenario` | declarative experiments: TOML `ScenarioSpec` + the env/protocol registry |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use dynagg::protocols::push_sum_revert::PushSumRevert;
//! use dynagg::sim::{env::uniform::UniformEnv, metrics::Truth, runner};
//!
//! // 200 hosts holding uniformly random values; maintain the average.
//! let sim = runner::builder(42)
//!     .environment(UniformEnv::new())
//!     .nodes_with_paper_values(200)
//!     .protocol(|_, value| PushSumRevert::new(value, 0.01))
//!     .truth(Truth::Mean)
//!     .build();
//! let series = sim.run(30);
//! let last = series.last().unwrap();
//! assert!(last.stddev < 5.0, "converged to the mean");
//! ```

#![forbid(unsafe_code)]

/// The paper's protocols (`dynagg-core`).
pub use dynagg_core as protocols;
/// Asynchronous node runtime and discrete-event engine (`dynagg-node`).
pub use dynagg_node as node;
/// Declarative experiment assembly (`dynagg-scenario`).
pub use dynagg_scenario as scenario;
/// Gossip simulator (`dynagg-sim`).
pub use dynagg_sim as sim;
/// Counting-sketch substrate (`dynagg-sketch`).
pub use dynagg_sketch as sketch;
/// Contact traces (`dynagg-trace`).
pub use dynagg_trace as trace;
